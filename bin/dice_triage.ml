(* Fault-triage CLI over the persistent regression corpus.

   dice_triage triage FILE   -- replay a scenario (JSON, or raw wire
                                bytes), minimize each detected
                                signature, file it into the corpus
   dice_triage replay DIR    -- re-run every corpus entry; nonzero exit
                                on vanished / erroring signatures
                                (--strict also fails on signatures that
                                appear but are not in the corpus)
   dice_triage list DIR      -- one line per entry
   dice_triage gc DIR        -- drop entries that no longer replay
   dice_triage repair ENTRY  -- localize + symbolize + solve a config
                                patch for the entry's fault; store the
                                dice-repair/1 record in the entry *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_scenario path =
  let contents = read_file path in
  match Triage.Scenario.of_string contents with
  | Ok s -> s
  | Error _ ->
      (* Not a scenario document: treat the raw bytes as a wire case,
         so the codec fuzzer's failing buffers triage directly. *)
      Triage.Scenario.Wire contents

(* --- triage -------------------------------------------------------- *)

let triage_cmd file corpus_dir max_tests no_minimize =
  let scenario = load_scenario file in
  let outcome = Triage.Scenario.run scenario in
  (match outcome.Triage.Scenario.o_error with
  | Some e ->
      Printf.eprintf "triage: scenario failed to replay: %s\n" e;
      exit 2
  | None -> ());
  match outcome.Triage.Scenario.o_signatures with
  | [] ->
      print_endline "triage: no fault detected; nothing to file.";
      0
  | sgs ->
      let distinct =
        List.sort_uniq
          (fun a b -> Triage.Signature.compare a b)
          sgs
      in
      Printf.printf "triage: %d distinct signature(s) detected\n%!"
        (List.length distinct);
      List.iter
        (fun sg ->
          let repro =
            if no_minimize then scenario
            else begin
              let r = Triage.Minimize.run ~max_tests ~target:sg scenario in
              Format.printf "%a@." Triage.Minimize.pp_result r;
              r.Triage.Minimize.r_minimized
            end
          in
          let entry = Triage.Corpus.add ~dir:corpus_dir sg repro in
          Printf.printf "filed %s -> %s (hits %d, size %d)\n%!"
            (Triage.Signature.to_string sg)
            (Filename.concat corpus_dir (Triage.Corpus.filename_of sg))
            entry.Triage.Corpus.e_hits
            (Triage.Scenario.size entry.Triage.Corpus.e_scenario))
        distinct;
      0

(* --- replay -------------------------------------------------------- *)

let replay_cmd dir strict =
  let entries = Triage.Corpus.load ~dir in
  if entries = [] then begin
    Printf.eprintf "replay: no corpus entries under %s\n" dir;
    1
  end
  else begin
    let known =
      List.filter_map
        (function
          | _, Ok e -> Some (Triage.Signature.to_string e.Triage.Corpus.e_signature)
          | _, Error _ -> None)
        entries
    in
    let failures = ref 0 in
    (* new signature -> the corpus entries whose replay introduced it,
       so a strict failure names the culprit, not just the symptom *)
    let appeared : (string * string list) list ref = ref [] in
    List.iter
      (fun (path, r) ->
        match r with
        | Error e ->
            incr failures;
            Printf.printf "INVALID  %s: %s\n%!" path e
        | Ok entry -> (
            let verdict = Triage.Corpus.replay entry in
            (match verdict with
            | Triage.Corpus.Confirmed _ -> ()
            | _ -> incr failures);
            Format.printf "%-9s %s@."
              (match verdict with
              | Triage.Corpus.Confirmed _ -> "CONFIRMED"
              | Triage.Corpus.Vanished _ -> "VANISHED"
              | Triage.Corpus.Replay_error _ -> "ERROR")
              (Triage.Signature.to_string entry.Triage.Corpus.e_signature);
            let note_appeared extra =
              let intro = Filename.basename path in
              List.iter
                (fun sg ->
                  let s = Triage.Signature.to_string sg in
                  if not (List.mem s known) then
                    let prev =
                      Option.value ~default:[] (List.assoc_opt s !appeared)
                    in
                    appeared :=
                      (s, intro :: prev) :: List.remove_assoc s !appeared)
                extra
            in
            match verdict with
            | Triage.Corpus.Confirmed extra | Triage.Corpus.Vanished extra ->
                note_appeared extra
            | Triage.Corpus.Replay_error e -> Printf.printf "          %s\n%!" e))
      entries;
    let appeared =
      List.sort (fun (a, _) (b, _) -> String.compare a b) !appeared
    in
    if strict && appeared <> [] then begin
      List.iter
        (fun (s, intros) ->
          Printf.printf "APPEARED  %s (not in corpus; introduced by %s)\n%!" s
            (String.concat ", " (List.sort_uniq String.compare intros)))
        appeared;
      failures := !failures + List.length appeared
    end;
    Printf.printf "replay: %d entr%s, %d failure(s)\n%!" (List.length entries)
      (if List.length entries = 1 then "y" else "ies")
      !failures;
    if !failures > 0 then 1 else 0
  end

(* --- list ----------------------------------------------------------- *)

let list_cmd dir =
  let entries = Triage.Corpus.load ~dir in
  if entries = [] then print_endline "corpus is empty."
  else
    List.iter
      (fun (path, r) ->
        match r with
        | Error e -> Printf.printf "%-40s INVALID: %s\n" (Filename.basename path) e
        | Ok e ->
            Printf.printf "%-40s %s  hits=%d size=%d repair=%s\n"
              (Filename.basename path)
              (Triage.Signature.to_string e.Triage.Corpus.e_signature)
              e.Triage.Corpus.e_hits
              (Triage.Scenario.size e.Triage.Corpus.e_scenario)
              (Triage.Corpus.repair_status_name (Triage.Corpus.repair_status e)))
      entries;
  0

(* --- gc ------------------------------------------------------------- *)

let gc_cmd dir =
  match Triage.Corpus.gc ~dir with
  | [] ->
      print_endline "gc: corpus clean, nothing removed.";
      0
  | removed ->
      List.iter (fun (path, reason) -> Printf.printf "removed %s: %s\n" path reason)
        removed;
      Printf.printf "gc: removed %d entr%s\n" (List.length removed)
        (if List.length removed = 1 then "y" else "ies");
      0

(* --- repair ---------------------------------------------------------- *)

(* Uncovered clause-coverage point ids from a dice-confuzz-cov/1
   report (both arms), or from a bare JSON list of id strings. *)
let load_uncovered path =
  let module J = Telemetry.Json in
  let strings = function
    | J.List l ->
        List.filter_map (function J.String s -> Some s | _ -> None) l
    | _ -> []
  in
  match J.of_string (read_file path) with
  | Error e -> Error (Printf.sprintf "%s: %s" path e)
  | Ok (J.List _ as l) -> Ok (strings l)
  | Ok doc ->
      let arm name =
        match J.member name doc with
        | Some arm -> (
            match J.member "uncovered" arm with
            | Some l -> strings l
            | None -> [])
        | None -> []
      in
      Ok (List.sort_uniq String.compare (arm "guided" @ arm "random"))

let repair_cmd entry_path all max_candidates uncovered emit =
  let module J = Telemetry.Json in
  match Triage.Corpus.entry_of_string (read_file entry_path) with
  | Error e ->
      Printf.eprintf "repair: %s: not a corpus entry: %s\n" entry_path e;
      2
  | Ok entry -> (
      let negative =
        match uncovered with
        | None -> []
        | Some path -> (
            match load_uncovered path with
            | Ok ids -> ids
            | Error e ->
                Printf.eprintf "repair: bad coverage report: %s\n" e;
                exit 2)
      in
      let target = entry.Triage.Corpus.e_signature in
      Printf.printf "repair: %s\n%!" (Triage.Signature.to_string target);
      match
        Repair.Search.run ~negative ~all ~max_candidates ~target
          entry.Triage.Corpus.e_scenario
      with
      | Error e ->
          Printf.eprintf "repair: %s\n" e;
          2
      | Ok outcome ->
          let record = Repair.Report.of_outcome outcome in
          let entry' =
            Triage.Corpus.set_repair
              ~dir:(Filename.dirname entry_path)
              entry record
          in
          ignore entry';
          (match emit with
          | None -> ()
          | Some path ->
              let oc = open_out path in
              Fun.protect
                ~finally:(fun () -> close_out oc)
                (fun () ->
                  output_string oc (J.to_string record);
                  output_char oc '\n'));
          Format.printf "%a@." Repair.Report.pp_summary record;
          (match outcome.Repair.Search.re_verified with
          | Some c ->
              Printf.printf "verified patch: %s\n%!"
                (Repair.Patch.describe c.Repair.Search.ca_patch);
              0
          | None -> 1))

(* --- cmdliner wiring ------------------------------------------------ *)

open Cmdliner

let dir_arg =
  let doc = "Corpus directory (one dice-corpus/1 JSON file per signature)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc)

let triage_term =
  let file =
    let doc = "Scenario to triage: a scenario JSON document, or raw bytes (treated as a wire-decode case)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let corpus =
    let doc = "Corpus directory to file detections into." in
    Arg.(value & opt string "dice-corpus" & info [ "corpus" ] ~docv:"DIR" ~doc)
  in
  let max_tests =
    let doc = "Replay budget for the minimizer." in
    Arg.(value & opt int Triage.Minimize.default_max_tests
         & info [ "max-tests" ] ~docv:"N" ~doc)
  in
  let no_minimize =
    let doc = "File the scenario as-is without delta-debugging it." in
    Arg.(value & flag & info [ "no-minimize" ] ~doc)
  in
  Cmd.v
    (Cmd.info "triage" ~doc:"replay a scenario, minimize and file its detections")
    Term.(const triage_cmd $ file $ corpus $ max_tests $ no_minimize)

let replay_term =
  let strict =
    let doc =
      "Also fail when a replay detects a signature that is not in the \
       corpus (regression corpora must neither lose nor grow \
       signatures silently)."
    in
    Arg.(value & flag & info [ "strict" ] ~doc)
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"re-run every corpus entry and verify its signature")
    Term.(const replay_cmd $ dir_arg $ strict)

let list_term =
  Cmd.v (Cmd.info "list" ~doc:"print every corpus entry")
    Term.(const list_cmd $ dir_arg)

let gc_term =
  Cmd.v
    (Cmd.info "gc" ~doc:"drop invalid entries and entries that no longer replay")
    Term.(const gc_cmd $ dir_arg)

let repair_term =
  let entry =
    let doc = "Corpus entry file (dice-corpus/1 JSON) to repair." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"ENTRY" ~doc)
  in
  let all =
    let doc = "Keep searching after the first verified patch." in
    Arg.(value & flag & info [ "all" ] ~doc)
  in
  let max_candidates =
    let doc = "Cap on solver-produced candidate patches." in
    Arg.(value & opt int 8 & info [ "max-candidates" ] ~docv:"N" ~doc)
  in
  let uncovered =
    let doc =
      "Coverage report (dice-confuzz-cov/1, or a JSON list of point \
       ids) whose uncovered clause ids are negative localization \
       evidence."
    in
    Arg.(value & opt (some file) None & info [ "uncovered" ] ~docv:"REPORT" ~doc)
  in
  let emit =
    let doc = "Also write the dice-repair/1 record to this file." in
    Arg.(value & opt (some string) None & info [ "emit" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "repair"
       ~doc:
         "diagnose the entry's fault and search for a verified config \
          patch (exit 0 when a patch verifies, 1 otherwise)")
    Term.(
      const repair_cmd $ entry $ all $ max_candidates $ uncovered $ emit)

let cmd =
  let doc = "fault triage: minimize, file and replay DiCE fault repros" in
  let man =
    [ `S Manpage.s_description;
      `P
        "Works over a persistent regression corpus: a directory of \
         dice-corpus/1 JSON entries, one per stable fault signature, each \
         holding a delta-debugged minimal scenario that deterministically \
         reproduces the signature.";
      `S Manpage.s_examples;
      `Pre "  dice_triage triage repro.json --corpus dice-corpus";
      `Pre "  dice_triage triage fuzz-corpus/fail-000.bin";
      `Pre "  dice_triage replay examples/corpus --strict";
      `Pre "  dice_triage list dice-corpus";
      `Pre "  dice_triage gc dice-corpus";
      `Pre "  dice_triage repair dice-corpus/<entry>.json --emit repair.json" ]
  in
  Cmd.group
    (Cmd.info "dice_triage" ~version:"1.0.0" ~doc ~man)
    [ triage_term; replay_term; list_term; gc_term; repair_term ]

let () = exit (Cmd.eval' cmd)
