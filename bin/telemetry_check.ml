(* Smoke validator for dice-telemetry/1 artifacts: every line parses,
   the header is well-formed, span ids are unique, every span closes,
   and fault span paths reference real spans.  Exit 0 on a valid file,
   1 with the violations listed otherwise.  CI runs this over the
   demo's JSONL before uploading it. *)

let () =
  match Sys.argv with
  | [| _; path |] -> (
      match Telemetry.Schema.validate_file path with
      | Ok stats ->
          Format.printf "%s: OK — %a@." path Telemetry.Schema.pp_stats stats;
          exit 0
      | Error msgs ->
          Printf.eprintf "%s: INVALID (%d problem(s))\n" path (List.length msgs);
          List.iter (fun m -> Printf.eprintf "  - %s\n" m) msgs;
          exit 1)
  | _ ->
      Printf.eprintf "usage: %s FILE.jsonl\n" Sys.argv.(0);
      exit 2
