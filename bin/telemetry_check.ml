(* Smoke validator for dice-telemetry/1 artifacts: every line parses,
   the header is well-formed, span ids are unique, every span closes,
   and fault span paths reference real spans.  With --cascade, the
   file is instead validated as a single-document dice-cascade/1
   analysis report; with --campaign, as a dice-campaign/1 final
   report.  Exit 0 on a valid file, 1 with the violations
   listed otherwise.  CI runs this over the demo's JSONL (and the
   cascade smoke's report) before uploading them.  With --repair, the
   file is validated as a dice-repair/1 record — either standalone
   (dice_triage repair --emit) or embedded as the "repair" member of a
   dice-corpus/1 entry. *)

let invalid path msgs =
  Printf.eprintf "%s: INVALID (%d problem(s))\n" path (List.length msgs);
  List.iter (fun m -> Printf.eprintf "  - %s\n" m) msgs;
  exit 1

let () =
  match Sys.argv with
  | [| _; path |] -> (
      match Telemetry.Schema.validate_file path with
      | Ok stats ->
          Format.printf "%s: OK — %a@." path Telemetry.Schema.pp_stats stats;
          exit 0
      | Error msgs -> invalid path msgs)
  | [| _; "--cascade"; path |] -> (
      match Cascade.Report.validate_file path with
      | Ok json ->
          let cascades =
            match Telemetry.Json.member "cascades" json with
            | Some (Telemetry.Json.List l) -> List.length l
            | _ -> 0
          in
          Printf.printf "%s: OK — %s report, %d cascade(s)\n" path
            Cascade.Report.version cascades;
          exit 0
      | Error msgs -> invalid path msgs)
  | [| _; "--campaign"; path |] -> (
      match Campaign.Report.validate_file path with
      | Ok json ->
          let outcome =
            match Telemetry.Json.member "outcome" json with
            | Some (Telemetry.Json.String o) -> o
            | _ -> "unknown"
          in
          Printf.printf "%s: OK — %s report, outcome %s\n" path
            Campaign.Report.version outcome;
          exit 0
      | Error msgs -> invalid path msgs)
  | [| _; "--repair"; path |] -> (
      let contents =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Telemetry.Json.of_string contents with
      | Error e -> invalid path [ e ]
      | Ok json -> (
          let record =
            match Telemetry.Json.member "schema" json with
            | Some (Telemetry.Json.String s)
              when s = Repair.Report.schema_version ->
                Ok json
            | _ -> (
                (* a corpus entry wrapping the record *)
                match Telemetry.Json.member "repair" json with
                | Some r -> Ok r
                | None -> Error "neither a dice-repair/1 record nor a corpus entry with one")
          in
          match record with
          | Error e -> invalid path [ e ]
          | Ok r -> (
              match Repair.Report.validate r with
              | Ok () ->
                  Printf.printf "%s: OK — %s record, status %s\n" path
                    Repair.Report.schema_version
                    (Repair.Report.status r);
                  exit 0
              | Error e -> invalid path [ e ])))
  | _ ->
      Printf.eprintf "usage: %s [--cascade|--campaign|--repair] FILE\n"
        Sys.argv.(0);
      exit 2
