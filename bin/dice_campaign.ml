(* Campaign driver CLI: run a declarative dice-campaign/1 spec under
   the supervising scheduler, or resume a killed run from its journal.
   Exit status: 0 = campaign completed with the cascade health gate
   clean, 1 = health gate failed (a self-sustaining failure was
   observed), 2 = bad usage / unreadable spec / corrupt journal — so
   CI can gate on the exit code directly. *)

let print_result dir (r : Campaign.Run.result_t) =
  List.iter (fun w -> Printf.eprintf "warning: %s\n" w) r.r_warnings;
  let report = r.r_report in
  Printf.printf
    "campaign %s: %d/%d job(s) complete (%d executed, %d replayed), %d \
     signature(s) filed\n"
    r.r_report.Campaign.Report.r_outcome r.r_completed r.r_total r.r_executed
    r.r_replayed
    (List.length r.r_filed);
  List.iter (fun sg -> Printf.printf "  filed %s\n" sg) r.r_filed;
  Printf.printf "report: %s\n" (Filename.concat dir "report.json");
  if report.Campaign.Report.r_gate_failed then begin
    Printf.printf "health gate FAILED: self-sustaining failure(s) observed\n";
    1
  end
  else 0

let fail msg =
  Printf.eprintf "dice_campaign: %s\n" msg;
  2

let run_cmd spec_path dir crash_after verbose =
  let log = if verbose then prerr_endline else ignore in
  match Campaign.Spec.load spec_path with
  | Error e -> fail e
  | Ok spec -> (
      let jobs = List.length (Campaign.Spec.jobs spec) in
      Printf.printf "campaign %S: %d template(s), %d job(s) -> %s\n"
        spec.Campaign.Spec.c_name
        (List.length spec.Campaign.Spec.c_templates)
        jobs dir;
      match Campaign.Run.start ?crash_after ~log ~dir spec with
      | Error e -> fail e
      | Ok r -> print_result dir r)

let resume_cmd dir crash_after verbose =
  let log = if verbose then prerr_endline else ignore in
  match Campaign.Run.resume ?crash_after ~log ~dir () with
  | Error e -> fail e
  | Ok r -> print_result dir r

let check_cmd spec_path =
  match Campaign.Spec.load spec_path with
  | Error e -> fail e
  | Ok spec ->
      Printf.printf "%s: OK — campaign %S, %d template(s), %d job(s)\n"
        spec_path spec.Campaign.Spec.c_name
        (List.length spec.Campaign.Spec.c_templates)
        (List.length (Campaign.Spec.jobs spec));
      List.iter
        (fun (t : Campaign.Spec.template) ->
          Printf.printf "  %s: %d seed(s), scenario size %d\n"
            t.Campaign.Spec.t_name
            (List.length t.Campaign.Spec.t_seeds)
            (Triage.Scenario.size t.Campaign.Spec.t_scenario))
        spec.Campaign.Spec.c_templates;
      0

open Cmdliner

let dir_arg =
  let doc = "The campaign directory (journal, report, corpus)." in
  Arg.(required & pos 1 (some string) None & info [] ~docv:"DIR" ~doc)

let spec_arg p =
  let doc = "The dice-campaign/1 spec file." in
  Arg.(required & pos p (some string) None & info [] ~docv:"SPEC" ~doc)

let crash_after =
  let doc =
    "Testing hook: simulate a kill -9 (immediate _exit 137, no cleanup) \
     right after the $(docv)-th live final verdict reaches the journal."
  in
  Arg.(
    value
    & opt (some int) None
    & info [ "crash-after" ] ~docv:"N" ~doc)

let verbose =
  let doc = "Log per-job progress to stderr." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let run_c =
  let doc = "run a campaign spec into a fresh directory" in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run_cmd $ spec_arg 0 $ dir_arg $ crash_after $ verbose)

let resume_c =
  let doc = "resume a campaign from its journal after a crash" in
  let man =
    [ `S Manpage.s_description;
      `P
        "Replays $(i,DIR)/journal.jsonl — verifying the spec digest and \
         every checkpoint — feeds completed verdicts back into the \
         deterministic scheduler without re-executing them, and continues \
         the sweep.  A campaign killed with kill -9 and resumed produces a \
         byte-identical report.json and the same filed corpus as an \
         uninterrupted run." ]
  in
  let dir =
    let doc = "The campaign directory to resume." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc)
  in
  Cmd.v (Cmd.info "resume" ~doc ~man)
    Term.(const resume_cmd $ dir $ crash_after $ verbose)

let check_c =
  let doc = "validate a campaign spec and print its expansion" in
  Cmd.v (Cmd.info "check" ~doc) Term.(const check_cmd $ spec_arg 0)

let cmd =
  let doc = "supervised scenario campaigns over the DiCE triage engine" in
  let man =
    [ `S Manpage.s_description;
      `P
        "Expands a declarative campaign spec (scenario templates × seed \
         sweeps) into jobs and drives them under supervision: per-scenario \
         watchdog, exception absorption, retry with backoff for flaky \
         verdicts, exponential-backoff quarantine for templates that keep \
         failing, campaign-wide signature dedupe before corpus filing, and \
         a per-job online cascade monitor whose findings gate the exit \
         code.  Every state transition is journaled (fsync'd JSONL) so \
         $(b,resume) continues deterministically after a crash.";
      `S Manpage.s_exit_status;
      `P "0 when the campaign completed and the health gate is clean, 1 \
          when a self-sustaining failure was observed, 2 on bad usage, an \
          invalid spec or a corrupt journal." ]
  in
  Cmd.group (Cmd.info "dice_campaign" ~version:"1.0.0" ~doc ~man)
    [ run_c; resume_c; check_c ]

let () = exit (Cmd.eval' cmd)
