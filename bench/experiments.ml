(* The experiment harness: regenerates every figure and evaluation
   claim of the paper (see DESIGN.md §3 and EXPERIMENTS.md).

   F1 — Figure 1: DiCE executing over 27 BGP routers.
   F2 — Figure 2: snapshot -> isolated exploration over clones.
   T1 — §3: detection of the three fault classes.
   T2 — §3: "low overhead".
   T3 — §2 insights: exploration efficiency, grammar-fuzz validity.
   T4 — §3: systematic exploration of the route-selection outcome. *)

let time_wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let deploy_generated ~seed ~t1 ~transit ~stub =
  let params =
    { Topology.Generate.default_params with n_tier1 = t1; n_transit = transit; n_stub = stub }
  in
  let graph = Topology.Generate.generate ~params (Netsim.Rng.create seed) in
  let build = Topology.Build.deploy graph in
  Topology.Build.start_all build;
  assert (Topology.Build.converge build);
  (graph, build)

let fmt_time span = Format.asprintf "%a" Netsim.Time.pp (Netsim.Time.of_us (max 0 span))

let fmt_instant t = Format.asprintf "%a" Netsim.Time.pp t

(* ------------------------------------------------------------------ *)
(* F1                                                                  *)
(* ------------------------------------------------------------------ *)

let f1 () =
  Tables.section "F1 / Figure 1: DiCE over 27 BGP routers, Internet-like conditions";
  let graph = Topology.Demo27.graph in
  let build = Topology.Build.deploy graph in
  Topology.Build.start_all build;
  let (), conv_wall = time_wall (fun () -> assert (Topology.Build.converge build)) in
  Tables.note "topology: %s\n" (Topology.Render.summary_line graph);
  Tables.note "live convergence: %d routes, %d sessions, %d messages, %.2fs wall\n"
    (Topology.Build.total_loc_routes build)
    (Topology.Build.established_sessions build)
    (Netsim.Network.messages_sent build.Topology.Build.net)
    conv_wall;
  let gt = Dice.Checks.ground_truth_of_graph graph in
  let summary, wall =
    time_wall (fun () ->
        Dice.Orchestrator.run ~build ~gt ~rounds:(Topology.Graph.size graph) ())
  in
  let per_node =
    List.filter_map
      (fun (r : Dice.Orchestrator.round) ->
        match Dice.Orchestrator.round_exploration r with
        | None -> None
        | Some x ->
            Some
              ( x.Dice.Explorer.x_node,
                { Topology.Render.label =
                    Printf.sprintf "%d in / %d paths" x.Dice.Explorer.x_inputs
                      x.Dice.Explorer.x_distinct_paths;
                  highlight = x.Dice.Explorer.x_faults <> [] } ))
      summary.Dice.Orchestrator.rounds
  in
  print_string (Topology.Render.ascii ~annotations:per_node graph);
  Tables.note
    "DiCE swept all %d nodes: %d handler executions, %d shadow clones, %d faults, %.2fs wall\n"
    (List.length summary.Dice.Orchestrator.rounds)
    summary.Dice.Orchestrator.total_inputs summary.Dice.Orchestrator.total_shadow_runs
    (List.length summary.Dice.Orchestrator.faults)
    wall;
  Tables.note "(healthy deployment: the fault count above should be 0)\n"

(* ------------------------------------------------------------------ *)
(* F2                                                                  *)
(* ------------------------------------------------------------------ *)

let f2 () =
  Tables.section "F2 / Figure 2: snapshot and isolated exploration over clones";
  let _, build = deploy_generated ~seed:2 ~t1:1 ~transit:2 ~stub:2 in
  let node = 1 in
  let cut =
    Snapshot.Cut.create
      ~speakers:(fun id -> Topology.Build.speaker build id)
      build.Topology.Build.net
  in
  Tables.note "1. node %d chosen as explorer; triggering snapshot\n" node;
  let snap = Snapshot.Cut.snapshot_of (Dice.Explorer.take_snapshot ~build ~cut ~node ()) in
  Tables.note
    "2. consistent cut: %d checkpoints, %d in-flight messages, %d markers, %s of simulated time\n"
    (List.length snap.Snapshot.Cut.checkpoints)
    (Snapshot.Cut.in_flight_total snap)
    snap.Snapshot.Cut.control_messages
    (fmt_time
       (Netsim.Time.diff snap.Snapshot.Cut.completed_at snap.Snapshot.Cut.started_at));
  let live_before = Topology.Build.loc_rib_snapshot build in
  let live_msgs = Netsim.Network.messages_sent build.Topology.Build.net in
  let speaker = Topology.Build.speaker build node in
  let peer = (List.hd (speaker.Bgp.Speaker.sp_config ()).Bgp.Config.neighbors).Bgp.Config.addr in
  let view = Dice.Sym_handler.view_of_speaker speaker ~peer in
  List.iteri
    (fun i input ->
      let shadow = Snapshot.Store.spawn snap in
      let raw = Dice.Sym_handler.concretize view input in
      (Snapshot.Store.speaker shadow node).Bgp.Speaker.sp_process_raw
        ~from_node:(Bgp.Router.node_of_addr peer) raw;
      let quiesced = Snapshot.Store.run_to_quiescence shadow in
      Tables.note "%d. explored input %d over cloned snapshot %d (quiesced=%b, fp=%08x)\n"
        (3 + i) (i + 1) (i + 1) quiesced
        (Snapshot.Store.loc_rib_fingerprint shadow land 0xFFFFFFFF))
    (Dice.Sym_handler.seeds view);
  let intact =
    Topology.Build.loc_rib_snapshot build = live_before
    && Netsim.Network.messages_sent build.Topology.Build.net = live_msgs
  in
  Tables.note "isolation: live system untouched by all three explorations = %b\n" intact

(* ------------------------------------------------------------------ *)
(* T1                                                                  *)
(* ------------------------------------------------------------------ *)

type t1_row = {
  t1_name : string;
  t1_class : Dice.Fault.fault_class;
  t1_nodes : int;
  t1_run : unit -> Topology.Build.t * Dice.Checks.ground_truth * Dice.Inject.scenario * int list option;
}

let t1 () =
  Tables.section "T1: detection of the three fault classes";
  let scenarios =
    [ { t1_name = "prefix hijack (operator mistake)";
        t1_class = Dice.Fault.Operator_mistake;
        t1_nodes = 9;
        t1_run =
          (fun () ->
            let graph, build = deploy_generated ~seed:11 ~t1:1 ~transit:3 ~stub:5 in
            ( build,
              Dice.Checks.ground_truth_of_graph graph,
              Dice.Inject.Prefix_hijack { at = 8; victim = 5 },
              None )) };
      { t1_name = "prefix hijack, 27-node demo topology";
        t1_class = Dice.Fault.Operator_mistake;
        t1_nodes = 27;
        t1_run =
          (fun () ->
            let graph = Topology.Demo27.graph in
            let build = Topology.Build.deploy graph in
            Topology.Build.start_all build;
            assert (Topology.Build.converge build);
            ( build,
              Dice.Checks.ground_truth_of_graph graph,
              Dice.Inject.Prefix_hijack { at = 21; victim = 11 },
              None )) };
      { t1_name = "bogus netmask announcement (operator mistake)";
        t1_class = Dice.Fault.Operator_mistake;
        t1_nodes = 9;
        t1_run =
          (fun () ->
            let graph, build = deploy_generated ~seed:12 ~t1:1 ~transit:3 ~stub:5 in
            ( build,
              Dice.Checks.ground_truth_of_graph graph,
              Dice.Inject.Bogus_netmask { at = 6 },
              None )) };
      { t1_name = "BAD GADGET dispute wheel (policy conflict)";
        t1_class = Dice.Fault.Policy_conflict;
        t1_nodes = 12;
        t1_run =
          (fun () ->
            let graph = Topology.Gadget.embedded () in
            let build = Topology.Build.deploy graph in
            Topology.Build.start_all build;
            assert (Topology.Build.converge build);
            ( build,
              Dice.Checks.ground_truth_of_graph graph,
              Dice.Inject.Policy_dispute
                { cycle = Topology.Gadget.wheel; victim = Topology.Gadget.victim },
              Some Topology.Gadget.wheel )) };
      { t1_name = "loop-check bypass (programming error)";
        t1_class = Dice.Fault.Programming_error;
        t1_nodes = 9;
        t1_run =
          (fun () ->
            let graph, build = deploy_generated ~seed:13 ~t1:1 ~transit:3 ~stub:5 in
            ( build,
              Dice.Checks.ground_truth_of_graph graph,
              Dice.Inject.Loop_check_bug { at = 2 },
              None )) };
      { t1_name = "community handler crash (programming error)";
        t1_class = Dice.Fault.Programming_error;
        t1_nodes = 9;
        t1_run =
          (fun () ->
            let graph, build = deploy_generated ~seed:14 ~t1:1 ~transit:3 ~stub:5 in
            ( build,
              Dice.Checks.ground_truth_of_graph graph,
              Dice.Inject.Crash_bug { at = 1; community = Bgp.Community.make 64999 13 },
              None )) } ]
  in
  let rows =
    List.map
      (fun s ->
        let build, gt, scenario, nodes = s.t1_run () in
        let injected_at = Netsim.Engine.now build.Topology.Build.engine in
        Dice.Inject.apply build scenario;
        Topology.Build.run_for build (Netsim.Time.span_sec 10.);
        let (summary, hit), wall =
          time_wall (fun () ->
              Dice.Orchestrator.run_until_detection ~build ~gt ?nodes
                ~expect:s.t1_class ())
        in
        let detected, rounds, sim_latency =
          match hit with
          | Some round ->
              let detection =
                List.find
                  (fun (f : Dice.Fault.t) -> f.Dice.Fault.f_class = s.t1_class)
                  (Dice.Orchestrator.round_exploration_exn round).Dice.Explorer.x_faults
              in
              ( "yes",
                List.length summary.Dice.Orchestrator.rounds,
                fmt_time (Netsim.Time.diff detection.Dice.Fault.f_detected_at injected_at) )
          | None -> ("NO", List.length summary.Dice.Orchestrator.rounds, "-")
        in
        [ s.t1_name;
          string_of_int s.t1_nodes;
          Dice.Fault.class_to_string s.t1_class;
          detected;
          string_of_int rounds;
          string_of_int summary.Dice.Orchestrator.total_inputs;
          sim_latency;
          Printf.sprintf "%.2f" wall ])
      scenarios
  in
  Tables.print ~title:"fault detection (paper: 'quickly detects faults' of all three classes)"
    ~header:
      [ "scenario"; "ASes"; "class"; "detected"; "rounds"; "inputs"; "sim latency";
        "wall s" ]
    rows

(* ------------------------------------------------------------------ *)
(* T2                                                                  *)
(* ------------------------------------------------------------------ *)

let t2 () =
  Tables.section "T2: overhead (paper: 'low overhead')";
  (* a. checkpoint cost vs state size *)
  let _, build = deploy_generated ~seed:15 ~t1:1 ~transit:2 ~stub:3 in
  let sp = Topology.Build.speaker build 1 in
  let grow target =
    let current = Bgp.Rib.total_adj_in (sp.Bgp.Speaker.sp_rib ()) in
    for i = current to target - 1 do
      sp.Bgp.Speaker.sp_inject_update ~from:(Bgp.Router.addr_of_node 0)
        { Bgp.Msg.withdrawn = [];
          attrs =
            Some
              (Bgp.Attr.make ~origin:Bgp.Attr.Igp
                 ~as_path:[ Bgp.As_path.Seq [ Topology.Gao_rexford.asn_of_node 0 ] ]
                 ~next_hop:(Bgp.Router.addr_of_node 0) ());
          nlri = [ Bgp.Prefix.make (Bgp.Ipv4.of_octets 203 (i lsr 8) (i land 255) 0) 24 ] }
    done
  in
  let rows =
    List.map
      (fun size ->
        grow size;
        let n = 200_000 in
        let t0 = Unix.gettimeofday () in
        for _ = 1 to n do
          ignore (Snapshot.Checkpoint.take ~at:Netsim.Time.zero sp)
        done;
        let dt = Unix.gettimeofday () -. t0 in
        [ string_of_int (Snapshot.Checkpoint.route_count (Snapshot.Checkpoint.take ~at:Netsim.Time.zero sp));
          Printf.sprintf "%.0f" (dt /. float_of_int n *. 1e9) ])
      [ 100; 1000; 5000 ]
  in
  Tables.print ~title:"a. checkpoint cost vs routing-state size (persistent state: O(1))"
    ~header:[ "routes in state"; "ns per checkpoint" ] rows;
  (* b. snapshot (cut) latency and message overhead vs topology size *)
  let rows =
    List.map
      (fun (name, graph) ->
        let build = Topology.Build.deploy graph in
        Topology.Build.start_all build;
        assert (Topology.Build.converge build);
        let cut =
          Snapshot.Cut.create
            ~speakers:(fun id -> Topology.Build.speaker build id)
            build.Topology.Build.net
        in
        let snap = Snapshot.Cut.snapshot_of (Dice.Explorer.take_snapshot ~build ~cut ~node:0 ()) in
        [ name;
          string_of_int (Topology.Graph.size graph);
          fmt_time
            (Netsim.Time.diff snap.Snapshot.Cut.completed_at snap.Snapshot.Cut.started_at);
          string_of_int snap.Snapshot.Cut.control_messages;
          string_of_int (Snapshot.Cut.in_flight_total snap) ])
      [ ("9-AS", Topology.Generate.generate
           ~params:{ Topology.Generate.default_params with n_tier1 = 1; n_transit = 3; n_stub = 5 }
           (Netsim.Rng.create 16));
        ("27-AS demo", Topology.Demo27.graph);
        ("54-AS", Topology.Generate.generate
           ~params:{ Topology.Generate.default_params with n_tier1 = 3; n_transit = 16; n_stub = 35 }
           (Netsim.Rng.create 17)) ]
  in
  Tables.print ~title:"b. consistent-cut latency and marker overhead vs topology size"
    ~header:[ "topology"; "ASes"; "cut latency (sim)"; "markers"; "in-flight msgs" ] rows;
  (* c. live interference: message counts with and without DiCE rounds *)
  let live_messages with_dice =
    let graph = Topology.Demo27.graph in
    let build = Topology.Build.deploy graph in
    Topology.Build.start_all build;
    assert (Topology.Build.converge build);
    let gt = Dice.Checks.ground_truth_of_graph graph in
    let before = Netsim.Network.messages_sent build.Topology.Build.net in
    let t_before = Netsim.Engine.now build.Topology.Build.engine in
    if with_dice then
      ignore (Dice.Orchestrator.run ~build ~gt ~rounds:5 ())
    else Topology.Build.run_for build (Netsim.Time.span_sec 25.);
    let span = Netsim.Time.diff (Netsim.Engine.now build.Topology.Build.engine) t_before in
    let msgs = Netsim.Network.messages_sent build.Topology.Build.net - before in
    (msgs, span)
  in
  let base_msgs, base_span = live_messages false in
  let dice_msgs, dice_span = live_messages true in
  Tables.print ~title:"c. live message overhead of running DiCE alongside the system"
    ~header:[ "mode"; "sim time"; "live messages"; "msgs/sim-s" ]
    [ [ "baseline (no DiCE)"; fmt_time base_span; string_of_int base_msgs;
        Printf.sprintf "%.1f" (float_of_int base_msgs /. (float_of_int base_span /. 1e6)) ];
      [ "with DiCE (5 rounds)"; fmt_time dice_span; string_of_int dice_msgs;
        Printf.sprintf "%.1f" (float_of_int dice_msgs /. (float_of_int dice_span /. 1e6)) ] ];
  (* d. exploration throughput *)
  let graph, build = deploy_generated ~seed:18 ~t1:1 ~transit:3 ~stub:5 in
  let gt = Dice.Checks.ground_truth_of_graph graph in
  let cut =
    Snapshot.Cut.create
      ~speakers:(fun id -> Topology.Build.speaker build id)
      build.Topology.Build.net
  in
  let x, wall =
    time_wall (fun () -> Dice.Explorer.explore_node ~build ~cut ~gt ~node:1 ())
  in
  Tables.print ~title:"d. exploration throughput (one node, one session)"
    ~header:[ "handler executions"; "shadow clones"; "wall s"; "inputs/s" ]
    [ [ string_of_int x.Dice.Explorer.x_inputs;
        string_of_int x.Dice.Explorer.x_shadow_runs;
        Printf.sprintf "%.2f" wall;
        Printf.sprintf "%.0f" (float_of_int x.Dice.Explorer.x_shadow_runs /. wall) ] ]

(* ------------------------------------------------------------------ *)
(* T3                                                                  *)
(* ------------------------------------------------------------------ *)

let t3 () =
  Tables.section "T3: exploration efficiency (concolic coverage, fuzz validity)";
  let graph = Topology.Demo27.graph in
  let build = Topology.Build.deploy graph in
  Topology.Build.start_all build;
  assert (Topology.Build.converge build);
  ignore graph;
  let node = 3 in
  let speaker = Topology.Build.speaker build node in
  let peer = (List.hd (speaker.Bgp.Speaker.sp_config ()).Bgp.Config.neighbors).Bgp.Config.addr in
  let view = Dice.Sym_handler.view_of_speaker speaker ~peer in
  Concolic.Solver.reset_stats ();
  let rows =
    List.map
      (fun budget ->
        let limits =
          { Concolic.Engine.default_limits with Concolic.Engine.max_inputs = budget }
        in
        let r =
          Concolic.Engine.explore ~limits ~seeds:(Dice.Sym_handler.seeds view)
            (Dice.Sym_handler.run view)
        in
        [ string_of_int budget;
          string_of_int r.Concolic.Engine.inputs_executed;
          string_of_int r.Concolic.Engine.distinct_paths;
          string_of_int r.Concolic.Engine.solver_calls;
          string_of_int r.Concolic.Engine.solver_sat ])
      [ 10; 20; 40; 80; 160 ]
  in
  Tables.print
    ~title:"a. concolic path discovery vs input budget (one transit router's import pipeline)"
    ~header:[ "budget"; "executed"; "distinct paths"; "solver calls"; "sat" ]
    rows;
  (let st = Concolic.Solver.stats () in
   Tables.note "solver totals: sat=%d unsat=%d unknown=%d nodes=%d cache hits=%d misses=%d\n"
     st.Concolic.Solver.solved_sat st.Concolic.Solver.solved_unsat
     st.Concolic.Solver.solved_unknown st.Concolic.Solver.search_nodes
     st.Concolic.Solver.cache_hits st.Concolic.Solver.cache_misses);
  (* b. grammar fuzz validity *)
  let rng = Netsim.Rng.create 19 in
  let n = 2000 in
  let inputs = Dice.Sym_handler.fuzz_inputs view rng n in
  let valid =
    List.length
      (List.filter
         (fun input ->
           match Bgp.Wire.decode (Dice.Sym_handler.concretize view input) with
           | Ok _ -> true
           | Error _ -> false)
         inputs)
  in
  Tables.print ~title:"b. grammar-based fuzzing produces valid protocol inputs (insight iii)"
    ~header:[ "fuzzed updates"; "wire-valid"; "validity %" ]
    [ [ string_of_int n; string_of_int valid;
        Printf.sprintf "%.1f" (100. *. float_of_int valid /. float_of_int n) ] ]

(* ------------------------------------------------------------------ *)
(* T4                                                                  *)
(* ------------------------------------------------------------------ *)

let t4 () =
  Tables.section
    "T4: systematic exploration of the route-selection outcome (symbolic most-preferred)";
  (* A router with several concurrent candidates: the gadget victim has
     three providers all announcing every sibling prefix. *)
  let graph = Topology.Gadget.embedded () in
  let build = Topology.Build.deploy graph in
  Topology.Build.start_all build;
  assert (Topology.Build.converge build);
  ignore graph;
  let node = Topology.Gadget.victim in
  let speaker = Topology.Build.speaker build node in
  let target = Topology.Gao_rexford.prefix_of_node 6 in
  let candidates = Bgp.Rib.candidates target (speaker.Bgp.Speaker.sp_rib ()) in
  let cut =
    Snapshot.Cut.create
      ~speakers:(fun id -> Topology.Build.speaker build id)
      build.Topology.Build.net
  in
  let snap = Snapshot.Cut.snapshot_of (Dice.Explorer.take_snapshot ~build ~cut ~node ()) in
  (* Explore over every session of the victim: each peer can displace
     the selection its own way. *)
  let outcomes = Hashtbl.create 8 in
  let totals = ref (0, 0, 0) in
  List.iter
    (fun (n : Bgp.Config.neighbor) ->
      let peer = n.Bgp.Config.addr in
      let view = Dice.Sym_handler.view_of_speaker speaker ~peer in
      let r =
        Concolic.Engine.explore
          ~limits:{ Concolic.Engine.default_limits with Concolic.Engine.max_inputs = 60 }
          ~seeds:
            ([ ("nlri_a", 192); ("nlri_b", 0); ("nlri_c", 6); ("nlri_len", 24) ]
            :: Dice.Sym_handler.seeds view)
          (Dice.Sym_handler.run view)
      in
      List.iter
        (fun (run : _ Concolic.Engine.run) ->
          let shadow = Snapshot.Store.spawn snap in
          let raw = Dice.Sym_handler.concretize view run.Concolic.Engine.run_input in
          (Snapshot.Store.speaker shadow node).Bgp.Speaker.sp_process_raw
            ~from_node:(Bgp.Router.node_of_addr peer) raw;
          ignore (Snapshot.Store.run_to_quiescence shadow);
          let via =
            match
              Bgp.Prefix.Map.find_opt target
                (Bgp.Speaker.loc_rib (Snapshot.Store.speaker shadow node))
            with
            | Some route ->
                Bgp.Ipv4.to_string route.Bgp.Rib.source.Bgp.Rib.peer_addr
            | None -> "(unreachable)"
          in
          Hashtbl.replace outcomes via ())
        r.Concolic.Engine.runs;
      let won =
        List.length
          (List.filter
             (fun (run : _ Concolic.Engine.run) ->
               match run.Concolic.Engine.run_outcome with
               | Concolic.Engine.Value (Dice.Sym_handler.Accepted { preferred = true }) ->
                   true
               | _ -> false)
             r.Concolic.Engine.runs)
      in
      let a, b, c = !totals in
      totals :=
        ( a + r.Concolic.Engine.inputs_executed,
          b + r.Concolic.Engine.distinct_paths,
          c + won ))
    (speaker.Bgp.Speaker.sp_config ()).Bgp.Config.neighbors;
  let inputs, paths, preferred_splits = !totals in
  Tables.print
    ~title:"decision-process outcomes reached by exploration (victim router, all 3 sessions)"
    ~header:
      [ "candidates"; "inputs executed"; "distinct paths"; "selection outcomes";
        "inputs that won selection" ]
    [ [ string_of_int (List.length candidates);
        string_of_int inputs;
        string_of_int paths;
        string_of_int (Hashtbl.length outcomes);
        string_of_int preferred_splits ] ];
  Tables.note "outcomes: %s\n"
    (String.concat ", " (Hashtbl.fold (fun k () acc -> k :: acc) outcomes []))

(* ------------------------------------------------------------------ *)
(* T5: heterogeneity                                                   *)
(* ------------------------------------------------------------------ *)

let t5 () =
  Tables.section "T5: heterogeneous deployment (two independent implementations)";
  let graph = Topology.Demo27.graph in
  let sparrow_nodes =
    List.filter (fun i -> i mod 3 = 1) (Topology.Graph.node_ids graph)
  in
  let build = Topology.Build.deploy ~sparrow_nodes graph in
  Topology.Build.start_all build;
  let converged, wall = time_wall (fun () -> Topology.Build.converge build) in
  Tables.print ~title:"a. mixed 27-AS deployment (bird-like + sparrow)"
    ~header:[ "bird-like"; "sparrow"; "converged"; "routes"; "sessions"; "wall s" ]
    [ [ string_of_int (27 - List.length sparrow_nodes);
        string_of_int (List.length sparrow_nodes);
        string_of_bool converged;
        string_of_int (Topology.Build.total_loc_routes build);
        string_of_int (Topology.Build.established_sessions build);
        Printf.sprintf "%.2f" wall ] ];
  (* DiCE explores one node of each implementation; faults must be 0. *)
  let gt = Dice.Checks.ground_truth_of_graph graph in
  let rows =
    List.map
      (fun node ->
        let cut =
          Snapshot.Cut.create
            ~speakers:(fun id -> Topology.Build.speaker build id)
            build.Topology.Build.net
        in
        let x = Dice.Explorer.explore_node ~build ~cut ~gt ~node () in
        [ string_of_int node;
          (Topology.Build.speaker build node).Bgp.Speaker.sp_impl;
          string_of_int x.Dice.Explorer.x_inputs;
          string_of_int x.Dice.Explorer.x_distinct_paths;
          string_of_int (List.length x.Dice.Explorer.x_faults) ])
      [ 3; 4 ]
  in
  Tables.print ~title:"b. exploration is implementation-agnostic"
    ~header:[ "node"; "implementation"; "inputs"; "paths"; "faults" ] rows

(* ------------------------------------------------------------------ *)
(* T6: ablations                                                       *)
(* ------------------------------------------------------------------ *)

let t6 () =
  Tables.section "T6: ablations (design choices called out in DESIGN.md)";
  (* a. input derivation: concolic vs grammar fuzz for reaching a
     seeded crash bug. *)
  let graph, build = deploy_generated ~seed:33 ~t1:1 ~transit:2 ~stub:3 in
  ignore graph;
  let node = 1 in
  let poison = Bgp.Community.make 64997 5 in
  let sp = Topology.Build.speaker build node in
  sp.Bgp.Speaker.sp_set_bugs
    { Bgp.Router.no_bugs with Bgp.Router.crash_community = Some poison };
  let peer = (List.hd (sp.Bgp.Speaker.sp_config ()).Bgp.Config.neighbors).Bgp.Config.addr in
  let view = Dice.Sym_handler.view_of_speaker sp ~peer in
  let crash_position runs =
    let rec go i = function
      | [] -> None
      | (r : _ Concolic.Engine.run) :: rest -> (
          match r.Concolic.Engine.run_outcome with
          | Concolic.Engine.Raised (Bgp.Router.Crash _) -> Some (i + 1)
          | _ -> go (i + 1) rest)
    in
    go 0 runs
  in
  (* concolic (with benign seeds only) *)
  let concolic_result =
    Concolic.Engine.explore
      ~limits:{ Concolic.Engine.default_limits with Concolic.Engine.max_inputs = 400 }
      ~seeds:[ [ ("origin_as", view.Dice.Sym_handler.sh_peer.Bgp.Config.remote_as) ] ]
      (Dice.Sym_handler.run view)
  in
  let concolic_pos = crash_position concolic_result.Concolic.Engine.runs in
  (* fuzz-only: same mirror, random grammar inputs *)
  let rng = Netsim.Rng.create 77 in
  let fuzz_pos =
    let rec go i =
      if i > 400 then None
      else
        let input = List.hd (Dice.Sym_handler.fuzz_inputs view rng 1) in
        match Dice.Sym_handler.run view (Concolic.Ctx.create input) with
        | exception Bgp.Router.Crash _ -> Some i
        | _ -> go (i + 1)
    in
    go 1
  in
  let show = function Some n -> string_of_int n | None -> ">400" in
  (* Path coverage at equal input budgets. *)
  let budget = 48 in
  let concolic_paths =
    let r =
      Concolic.Engine.explore
        ~limits:{ Concolic.Engine.default_limits with Concolic.Engine.max_inputs = budget }
        ~seeds:(Dice.Sym_handler.seeds view)
        (Dice.Sym_handler.run view)
    in
    r.Concolic.Engine.distinct_paths
  in
  let fuzz_paths =
    let rng = Netsim.Rng.create 78 in
    let seen = Hashtbl.create 32 in
    List.iter
      (fun input ->
        let ctx = Concolic.Ctx.create input in
        (match Dice.Sym_handler.run view ctx with
        | _ -> ()
        | exception Bgp.Router.Crash _ -> ());
        Hashtbl.replace seen (Concolic.Engine.path_signature (Concolic.Ctx.path ctx)) ())
      (Dice.Sym_handler.fuzz_inputs view rng budget);
    Hashtbl.length seen
  in
  Tables.print
    ~title:"a. input derivation ablation (same handler, same input budget)"
    ~header:[ "strategy"; "inputs to crash"; "distinct paths @48 inputs" ]
    [ [ "concolic (branch negation)"; show concolic_pos; string_of_int concolic_paths ];
      [ "grammar fuzz only"; show fuzz_pos; string_of_int fuzz_paths ] ];
  (* b. consistent cut: does capturing in-flight messages matter? *)
  let trial deliver_in_flight seed =
    let _, build = deploy_generated ~seed ~t1:1 ~transit:3 ~stub:4 in
    let cut =
      Snapshot.Cut.create
        ~speakers:(fun id -> Topology.Build.speaker build id)
        build.Topology.Build.net
    in
    (* Trigger churn, snapshot mid-flight. *)
    let victim = Topology.Build.speaker build 7 in
    let cfg = victim.Bgp.Speaker.sp_config () in
    victim.Bgp.Speaker.sp_set_config { cfg with Bgp.Config.networks = [] };
    let snap = Snapshot.Cut.snapshot_of (Dice.Explorer.take_snapshot ~build ~cut ~node:0 ()) in
    let shadow = Snapshot.Store.spawn ~deliver_in_flight snap in
    ignore (Snapshot.Store.run_to_quiescence shadow);
    assert (Topology.Build.converge build);
    (* Count node/prefix disagreements between the quiesced clone and
       the eventual live state. *)
    let diffs = ref 0 in
    List.iter
      (fun (id, clone_sp) ->
        let live_sp = Topology.Build.speaker build id in
        let keys m = List.map fst (Bgp.Prefix.Map.bindings (Bgp.Speaker.loc_rib m)) in
        if keys clone_sp <> keys live_sp then incr diffs)
      shadow.Snapshot.Store.sh_speakers;
    (Snapshot.Cut.in_flight_total snap, !diffs)
  in
  let rows =
    List.concat_map
      (fun seed ->
        let fl, with_d = trial true seed in
        let _, without_d = trial false seed in
        [ [ string_of_int seed; string_of_int fl; string_of_int with_d;
            string_of_int without_d ] ])
      [ 41; 42; 43; 44 ]
  in
  Tables.print
    ~title:"b. clone-vs-eventual-live disagreements with and without in-flight capture"
    ~header:[ "seed"; "in-flight msgs"; "diffs (captured)"; "diffs (dropped)" ]
    rows

let all () =
  let t0 = Unix.gettimeofday () in
  f1 ();
  f2 ();
  t1 ();
  t2 ();
  t3 ();
  t4 ();
  t5 ();
  t6 ();
  Tables.note "\nexperiment harness total: %.1fs\n" (Unix.gettimeofday () -. t0)

let _ = fmt_instant
