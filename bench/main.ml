(* Benchmark and experiment entry point.

   Usage:
     dune exec bench/main.exe                         # everything cheap
     dune exec bench/main.exe -- f1 t3                # selected sections
     dune exec bench/main.exe -- micro                # micro-benchmarks only
     dune exec bench/main.exe -- par                  # parallel exploration
     dune exec bench/main.exe -- scale --config lite  # scale workload

   The scale section is opt-in (never part of the default run): lite is
   a ~2 minute CI smoke, full is the ~10 minute 1k-router headline. *)

let sections =
  [ ("f1", Experiments.f1); ("f2", Experiments.f2); ("t1", Experiments.t1);
    ("t2", Experiments.t2); ("t3", Experiments.t3); ("t4", Experiments.t4);
    ("t5", Experiments.t5); ("t6", Experiments.t6);
    ("micro", Micro.run); ("par", Par.run); ("cascade", Cascade_bench.run) ]

let () =
  let config = ref "lite" in
  let rec parse acc = function
    | [] -> List.rev acc
    | "--config" :: c :: rest ->
        config := c;
        parse acc rest
    | "--config" :: [] ->
        prerr_endline "--config needs an argument";
        exit 1
    | s :: rest -> parse (s :: acc) rest
  in
  let requested =
    match parse [] (List.tl (Array.to_list Sys.argv)) with
    | [] -> List.map fst sections
    | args -> args
  in
  let all = sections @ [ ("scale", fun () -> Scale.run ~config:!config ()) ] in
  List.iter
    (fun name ->
      match List.assoc_opt name all with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown section %S; available: %s\n" name
            (String.concat " " (List.map fst all));
          exit 1)
    requested
