(* Benchmark and experiment entry point.

   Usage:
     dune exec bench/main.exe              # everything
     dune exec bench/main.exe -- f1 t3     # selected sections
     dune exec bench/main.exe -- micro     # micro-benchmarks only
     dune exec bench/main.exe -- par       # parallel exploration + BENCH.json *)

let sections =
  [ ("f1", Experiments.f1); ("f2", Experiments.f2); ("t1", Experiments.t1);
    ("t2", Experiments.t2); ("t3", Experiments.t3); ("t4", Experiments.t4);
    ("t5", Experiments.t5); ("t6", Experiments.t6);
    ("micro", Micro.run); ("par", Par.run) ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as args) -> args
    | _ :: [] | [] -> List.map fst sections
  in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown section %S; available: %s\n" name
            (String.concat " " (List.map fst sections));
          exit 1)
    requested
