(* Cascade analyzer throughput.

   Synthesizes a deterministic dice-telemetry/1 artifact of >= 100k
   records — round spans, per-(node, prefix) loc-rib flip trains, a
   recurring fault per node and quarantine ping-pong sys chatter — then
   times the full offline pipeline ([Cascade.Timeline.of_file] +
   [Cascade.Detect.run]) end to end.  Reported under [cascade] in
   BENCH.json; bench_check gates on [cascade.records_per_s]. *)

module Json = Telemetry.Json

let nodes = 64
let prefixes = 64
let flips_per_series = 32
let rounds = 8

(* Virtual sim clock: advanced explicitly so the artifact is identical
   run to run. *)
let clock = ref 0
let tick span_us = clock := !clock + span_us

let synthesize path =
  Telemetry.set_clock (fun () -> !clock);
  clock := 0;
  Telemetry.with_jsonl path
    ~attrs:[ ("bench", Json.String "cascade") ] (fun () ->
      for round = 0 to rounds - 1 do
        Telemetry.with_span "round"
          ~attrs:[ ("index", Json.Int round) ] (fun _sp ->
            tick 1000;
            (* Flip trains: each (node, prefix) series alternates
               between a reachable and an unreachable loc-rib state —
               the shape a dispute wheel produces. *)
            for n = 0 to nodes - 1 do
              for p = 0 to prefixes - 1 do
                let prefix = Printf.sprintf "10.%d.%d.0/24" (n mod 200) p in
                for k = 0 to (flips_per_series / rounds) - 1 do
                  tick 500;
                  let detail =
                    if (round + k) land 1 = 0 then
                      Printf.sprintf "%s via %d" prefix ((n + 1) mod nodes)
                    else Printf.sprintf "%s unreachable" prefix
                  in
                  Telemetry.trace_event ~t_us:!clock ~node:n ~kind:"loc-rib"
                    ~detail
                done
              done
            done;
            (* One recurring fault per node per round: exercises the
               signature-recurrence edge rule. *)
            for n = 0 to nodes - 1 do
              tick 200;
              Telemetry.fault ~fault_class:"safety" ~property:"route-present"
                ~node:n
                ~detail:(Printf.sprintf "prefix %d missing from loc-rib" n)
                ~input:None ()
            done;
            (* Quarantine ping-pong sys chatter. *)
            for n = 0 to nodes - 1 do
              tick 100;
              Telemetry.sys_event ~kind:"quarantine" ~nodes:[ n ]
                ~detail:"bench" ();
              tick 100;
              Telemetry.sys_event ~kind:"unquarantine" ~nodes:[ n ]
                ~detail:"bench" ()
            done;
            tick 1000)
      done)

let analyze path =
  match Cascade.Timeline.of_file path with
  | Error msgs ->
      List.iter prerr_endline msgs;
      failwith "bench cascade: synthetic artifact failed to parse"
  | Ok timeline ->
      let _propagation, cascades = Cascade.Detect.run timeline in
      (timeline, cascades)

let run () =
  print_endline "== cascade: analyzer throughput ==";
  let path = Filename.temp_file "bench_cascade" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      synthesize path;
      (* min-of-3 wall time: same policy as the scale section, sized
         for a noisy shared host. *)
      let passes = 3 in
      let best = ref infinity in
      let last = ref None in
      for _ = 1 to passes do
        let t0 = Unix.gettimeofday () in
        let r = analyze path in
        let dt = Unix.gettimeofday () -. t0 in
        if dt < !best then best := dt;
        last := Some r
      done;
      let timeline, cascades =
        match !last with Some r -> r | None -> assert false
      in
      let records = timeline.Cascade.Timeline.tl_records in
      if records < 100_000 then
        Printf.eprintf "warning: synthetic artifact only %d records\n" records;
      let per_s = float_of_int records /. !best in
      Printf.printf
        "  %d records (%d flips, %d faults, %d sys) -> %d cascade(s) in %.3fs \
         (%.0f records/s, min of %d)\n%!"
        records
        (List.length timeline.Cascade.Timeline.tl_flips)
        (List.length timeline.Cascade.Timeline.tl_faults)
        (List.length timeline.Cascade.Timeline.tl_sys)
        (List.length cascades) !best per_s passes;
      (* The synthetic load must actually trip the detector — a silent
         zero would mean the bench stopped measuring detection work. *)
      if cascades = [] then failwith "bench cascade: expected cascades";
      Benchio.update ~path:"BENCH.json"
        [ ( "cascade",
            Json.Obj
              [ ("records", Json.Int records);
                ("cascades", Json.Int (List.length cascades));
                ("analyze_s", Json.Float (Benchio.round2 !best));
                ("records_per_s", Json.Float (Benchio.round2 per_s)) ] ) ];
      print_endline "wrote cascade to BENCH.json")
