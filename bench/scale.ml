(* Internet-scale workload: Gao-Rexford topologies up to 1k routers
   with RIBs filled to 100k prefixes.

   Three configs share one code path so CI can gate on a cheap run
   while the checked-in headline numbers come from [full]:

     nano   100 nodes /  10k prefixes   sanity, seconds
     lite   250 nodes /  25k prefixes   CI smoke, ~2 min
     full  1000 nodes / 100k prefixes   headline, ~10 min

   Each config measures three layers:
     1. topology   - deploy + converge wall time over the full mesh
     2. explorer   - shadow executions per second on live routers
                     (reduced concolic limits: the point is end-to-end
                     throughput, not solver depth)
     3. rib micro  - a standalone router filled to N prefixes via
                     injected UPDATEs: fill rate, single-prefix
                     incremental decision latency, and longest-match
                     lookup latency over the candidate trie

   Results land in BENCH.json under scale.<config>, keyed by config
   name so a CI [lite] refresh never clobbers the checked-in [full]
   numbers.  The micro section is re-measured too so bench_check can
   gate wall-clock and allocation metrics from one fresh file. *)

module Json = Telemetry.Json

type config = {
  c_name : string;
  c_nodes : int;
  c_rib : int;
  c_explore : int;  (** how many routers to explore *)
}

let configs =
  [ { c_name = "nano"; c_nodes = 100; c_rib = 10_000; c_explore = 2 };
    { c_name = "lite"; c_nodes = 250; c_rib = 25_000; c_explore = 2 };
    { c_name = "full"; c_nodes = 1_000; c_rib = 100_000; c_explore = 1 } ]

let now = Unix.gettimeofday

let peak_rss_mb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0.
  | ic ->
      let rec go acc =
        match input_line ic with
        | exception End_of_file ->
            close_in ic;
            acc
        | l when String.length l > 6 && String.sub l 0 6 = "VmHWM:" ->
            let acc =
              try
                Scanf.sscanf
                  (String.sub l 6 (String.length l - 6))
                  " %d kB"
                  (fun kb -> float_of_int kb /. 1024.)
              with Scanf.Scan_failure _ | Failure _ -> acc
            in
            go acc
        | _ -> go acc
      in
      go 0.

(* Distinct /24s under 10.0.0.0/7: enough room for 128k prefixes. *)
let nth_prefix i =
  Bgp.Prefix.make
    (Bgp.Ipv4.of_octets (10 + (i lsr 16)) ((i lsr 8) land 255) (i land 255) 0)
    24

let nth_addr i =
  Bgp.Ipv4.of_octets (10 + (i lsr 16)) ((i lsr 8) land 255) (i land 255) 7

(* --- layer 3: standalone router at [prefixes] table size --- *)

type rib_result = {
  fill_s : float;
  updates_per_s : float;
  update_ns : float;
  update_minor_words : float;
  lpm_ns : float;
}

let rib_micro ~prefixes =
  let eng = Netsim.Engine.create () in
  let net = Netsim.Network.create eng in
  Netsim.Network.add_node net 0 (fun ~src:_ _ -> ());
  Netsim.Network.add_node net 1 (fun ~src:_ _ -> ());
  let peer = Bgp.Router.addr_of_node 1 in
  let cfg =
    Bgp.Config.make ~asn:65001
      ~router_id:(Bgp.Router.addr_of_node 0)
      ~neighbors:[ Bgp.Config.neighbor peer ~remote_as:65002 ]
      ()
  in
  let r = Bgp.Router.create ~net ~node:0 cfg in
  let attrs =
    Bgp.Attr.make ~as_path:[ Bgp.As_path.Seq [ 65002 ] ] ~next_hop:peer ()
  in
  (* Fill in 1000-NLRI batches, the shape of real table transfer. *)
  let t0 = now () in
  let batch = 1000 in
  let i = ref 0 in
  while !i < prefixes do
    let n = min batch (prefixes - !i) in
    let nlri = List.init n (fun k -> nth_prefix (!i + k)) in
    Bgp.Router.inject_update r ~from:peer
      { Bgp.Msg.withdrawn = []; attrs = Some attrs; nlri };
    i := !i + n
  done;
  Netsim.Engine.run ~max_events:(4 * prefixes) eng;
  let fill_s = now () -. t0 in
  (* Single-prefix churn against the full table: each injection dirties
     exactly one prefix, so this is the incremental decision process
     end to end (adj-in update, candidate lookup, selection, export). *)
  let churn = 2_000 in
  let w0 = Gc.minor_words () in
  let t1 = now () in
  for k = 0 to churn - 1 do
    let p = nth_prefix (k * 7919 mod prefixes) in
    let a =
      if k land 1 = 0 then Bgp.Attr.with_med (Some (k land 15)) attrs else attrs
    in
    Bgp.Router.inject_update r ~from:peer
      { Bgp.Msg.withdrawn = []; attrs = Some a; nlri = [ p ] }
  done;
  let t2 = now () in
  let w1 = Gc.minor_words () in
  (* Longest-match over the candidate trie at full table size. *)
  let lookups = 10_000 in
  let hit = ref 0 in
  let trie = (Bgp.Router.rib r).Bgp.Rib.cands in
  let t3 = now () in
  for k = 0 to lookups - 1 do
    let a = nth_addr (k * 4099 mod prefixes) in
    match Bgp.Prefix_trie.longest_match a trie with
    | Some _ -> incr hit
    | None -> ()
  done;
  let t4 = now () in
  if !hit <> lookups then failwith "scale: longest_match missed a filled /24";
  { fill_s;
    updates_per_s = float_of_int prefixes /. fill_s;
    update_ns = (t2 -. t1) *. 1e9 /. float_of_int churn;
    update_minor_words = (w1 -. w0) /. float_of_int churn;
    lpm_ns = (t4 -. t3) *. 1e9 /. float_of_int lookups }

(* --- layers 1+2: full topology, then explore live routers --- *)

let run_config c =
  Printf.printf "\n== scale %s: %d nodes, %d prefixes ==\n%!" c.c_name
    c.c_nodes c.c_rib;
  let t0 = now () in
  let graph = Topology.Gao_rexford.scale_graph ~nodes:c.c_nodes ~seed:42 in
  let build = Topology.Build.deploy ~seed:42 graph in
  Topology.Build.start_all build;
  let t1 = now () in
  let converged = Topology.Build.converge build in
  let t2 = now () in
  let routes = Topology.Build.total_loc_routes build in
  let sessions = Topology.Build.established_sessions build in
  Printf.printf
    "  deploy %.2fs  converge %.2fs (ok=%b)  routes=%d sessions=%d\n%!"
    (t1 -. t0) (t2 -. t1) converged routes sessions;
  let cut =
    Snapshot.Cut.create
      ~speakers:(fun id -> Topology.Build.speaker build id)
      build.Topology.Build.net
  in
  let gt = Dice.Checks.ground_truth_of_graph graph in
  let params =
    { Dice.Explorer.default_params with
      Dice.Explorer.limits =
        { Concolic.Engine.max_inputs = 12; max_branches = 24;
          solver_nodes = 20_000 };
      fuzz_extra = 4 }
  in
  let n_tier1, n_transit, _ = Topology.Gao_rexford.tiering ~nodes:c.c_nodes in
  (* One transit and one stub router: the two RIB shapes that matter. *)
  let targets =
    List.filteri (fun i _ -> i < c.c_explore) [ n_tier1; n_tier1 + n_transit ]
  in
  let t3 = now () in
  let shadows =
    List.fold_left
      (fun acc node ->
        let x = Dice.Explorer.explore_node ~params ~build ~cut ~gt ~node () in
        acc + x.Dice.Explorer.x_shadow_runs)
      0 targets
  in
  let t4 = now () in
  let explore_s = t4 -. t3 in
  Printf.printf "  explore %d node(s): %.2fs  shadows=%d (%.2f/s)\n%!"
    (List.length targets) explore_s shadows
    (float_of_int shadows /. explore_s);
  let rib = rib_micro ~prefixes:c.c_rib in
  Printf.printf
    "  rib %dk: fill %.2fs (%.0f upd/s)  update %.0fns (%.0f mnw)  lpm %.0fns\n%!"
    (c.c_rib / 1000) rib.fill_s rib.updates_per_s rib.update_ns
    rib.update_minor_words rib.lpm_ns;
  let rss = peak_rss_mb () in
  Printf.printf "  peak rss %.0f MB\n%!" rss;
  let f v = Json.Float (Benchio.round2 v) in
  Json.Obj
    [ ("nodes", Json.Int c.c_nodes);
      ("links", Json.Int (List.length graph.Topology.Graph.edges));
      ("sessions", Json.Int sessions);
      ("routes", Json.Int routes);
      ("converged", Json.Bool converged);
      ("deploy_s", f (t1 -. t0));
      ("converge_s", f (t2 -. t1));
      ("explore_nodes", Json.Int (List.length targets));
      ("shadows", Json.Int shadows);
      ("explore_s", f explore_s);
      ("shadows_per_s", f (float_of_int shadows /. explore_s));
      ("rib_prefixes", Json.Int c.c_rib);
      ("fill_s", f rib.fill_s);
      ("updates_per_s", f rib.updates_per_s);
      ("update_ns", f rib.update_ns);
      ("update_minor_words", f rib.update_minor_words);
      ("lpm_ns", f rib.lpm_ns);
      ("peak_rss_mb", f rss) ]

let run ?(config = "lite") () =
  let c =
    match List.find_opt (fun c -> c.c_name = config) configs with
    | Some c -> c
    | None ->
        Printf.eprintf "unknown scale config %S; available: %s\n" config
          (String.concat " " (List.map (fun c -> c.c_name) configs));
        exit 1
  in
  let result = run_config c in
  (* Fresh micro numbers ride along so bench_check gates one file. *)
  let micro = Micro.results () in
  Micro.print micro;
  let path = "BENCH.json" in
  let scale =
    let existing =
      match List.assoc_opt "scale" (Benchio.read_fields path) with
      | Some (Json.Obj fields) -> fields
      | _ -> []
    in
    if List.mem_assoc c.c_name existing then
      List.map
        (fun (k, v) -> if k = c.c_name then (k, result) else (k, v))
        existing
    else existing @ [ (c.c_name, result) ]
  in
  let micro_ns, micro_words = Par.micro_fields micro in
  Benchio.update ~path
    [ ("schema", Json.String "dice-bench/1");
      ("host_cores", Json.Int (Domain.recommended_domain_count ()));
      ("micro_ns_per_op", micro_ns);
      ("micro_minor_words_per_op", micro_words);
      ("scale", Json.Obj scale) ];
  Printf.printf "wrote scale.%s to %s\n%!" c.c_name path
