(* Bechamel micro-benchmarks: one Test.make per per-operation cost that
   the overhead discussion (T2) relies on. *)

open Bechamel
open Toolkit

let sample_update =
  let attrs =
    Bgp.Attr.make ~origin:Bgp.Attr.Igp
      ~as_path:[ Bgp.As_path.Seq [ 65001; 65002; 65003 ] ]
      ~med:(Some 50)
      ~communities:[ Bgp.Community.make 65001 100; Bgp.Community.no_export ]
      ~next_hop:(Bgp.Ipv4.of_string_exn "10.0.0.1")
      ()
  in
  Bgp.Msg.Update
    { withdrawn = [ Bgp.Prefix.of_string_exn "198.51.100.0/24" ];
      attrs = Some attrs;
      nlri =
        [ Bgp.Prefix.of_string_exn "192.0.2.0/24";
          Bgp.Prefix.of_string_exn "203.0.113.0/24" ] }

let sample_raw = Bgp.Wire.encode sample_update

let bench_wire_encode =
  Test.make ~name:"wire/encode-update" (Staged.stage (fun () -> Bgp.Wire.encode sample_update))

let bench_wire_decode =
  Test.make ~name:"wire/decode-update" (Staged.stage (fun () -> Bgp.Wire.decode sample_raw))

let big_trie =
  let rng = Netsim.Rng.create 4 in
  let bindings =
    List.init 10_000 (fun i ->
        ( Bgp.Prefix.make
            (Bgp.Ipv4.of_octets (Netsim.Rng.int_in rng 1 223) (i lsr 8) (i land 255) 0)
            24,
          i ))
  in
  Bgp.Prefix_trie.of_list bindings

let bench_trie_lpm =
  let addr = Bgp.Ipv4.of_string_exn "100.3.7.9" in
  Test.make ~name:"trie/longest-match-10k" (Staged.stage (fun () -> Bgp.Prefix_trie.longest_match addr big_trie))

let candidates =
  let route i =
    { Bgp.Rib.attrs =
        Bgp.Attr.make ~origin:Bgp.Attr.Igp
          ~as_path:[ Bgp.As_path.Seq [ 65000 + i; 65100 + i ] ]
          ~local_pref:(Some (100 + (i mod 3)))
          ~next_hop:(Bgp.Router.addr_of_node i) ();
      source =
        { Bgp.Rib.peer_addr = Bgp.Router.addr_of_node i;
          peer_as = 65000 + i;
          peer_bgp_id = Bgp.Router.addr_of_node i;
          ebgp = true;
          igp_metric = i } }
  in
  List.init 8 route

let bench_decision =
  Test.make ~name:"decision/best-of-8"
    (Staged.stage (fun () -> Bgp.Decision.best Bgp.Decision.default_config candidates))

let gao_policy = Topology.Gao_rexford.import_map Topology.Graph.Customer

let policy_attrs =
  Bgp.Attr.make ~origin:Bgp.Attr.Igp
    ~as_path:[ Bgp.As_path.Seq [ 65001 ] ]
    ~communities:[ Topology.Gao_rexford.community_provider ]
    ~next_hop:(Bgp.Ipv4.of_string_exn "10.0.0.2")
    ()

let bench_policy =
  let p = Bgp.Prefix.of_string_exn "192.0.2.0/24" in
  Test.make ~name:"policy/gao-rexford-import"
    (Staged.stage (fun () -> Bgp.Policy.apply gao_policy p policy_attrs))

let checkpoint_router =
  let graph =
    Topology.Generate.generate
      ~params:{ Topology.Generate.default_params with n_tier1 = 1; n_transit = 2; n_stub = 3 }
      (Netsim.Rng.create 23)
  in
  let build = Topology.Build.deploy graph in
  Topology.Build.start_all build;
  assert (Topology.Build.converge build);
  Topology.Build.speaker build 1

let bench_checkpoint =
  Test.make ~name:"snapshot/checkpoint-take"
    (Staged.stage (fun () -> Snapshot.Checkpoint.take ~at:Netsim.Time.zero checkpoint_router))

let solver_constraints =
  let x = Concolic.Expr.var "bench_x" ~lo:0 ~hi:65535 in
  let y = Concolic.Expr.var "bench_y" ~lo:0 ~hi:255 in
  Concolic.Expr.
    [ Eq (Add (Var y, Mul (Const 16, Var y)), Const 272);
      Lt (Var x, Const 1000);
      Not (Eq (Var x, Const 0)) ]

(* Disable memoization while timing the search itself: with the cache
   on, every iteration after the first would measure a table lookup. *)
let bench_solver =
  Test.make ~name:"solver/small-path-condition"
    (Staged.stage (fun () ->
         Concolic.Solver.set_cache_enabled false;
         let r = Concolic.Solver.solve solver_constraints in
         Concolic.Solver.set_cache_enabled true;
         r))

let bench_solver_memo =
  Test.make ~name:"solver/memo-hit"
    (Staged.stage (fun () -> Concolic.Solver.solve solver_constraints))

let bench_engine_events =
  Test.make ~name:"netsim/schedule-and-run-100"
    (Staged.stage (fun () ->
         let eng = Netsim.Engine.create () in
         for i = 1 to 100 do
           ignore (Netsim.Engine.schedule eng ~after:i (fun () -> ()))
         done;
         Netsim.Engine.run eng))

let tests =
  Test.make_grouped ~name:"dice"
    [ bench_wire_encode; bench_wire_decode; bench_trie_lpm; bench_decision;
      bench_policy; bench_checkpoint; bench_solver; bench_solver_memo;
      bench_engine_events ]

(* Toolkit's [minor_allocated] reads [Gc.quick_stat], whose
   [minor_words] field is only refreshed at collection boundaries on
   OCaml 5 — small benchmarks read as zero.  [Gc.minor_words] accounts
   for the current minor heap too, so register a measure on top of it. *)
module Minor_words = struct
  type witness = unit

  let load () = ()
  let unload () = ()
  let make () = ()
  let get () = Gc.minor_words ()
  let label () = "minor-words"
  let unit () = "mnw"
end

let minor_words = Measure.instance (module Minor_words) (Measure.register (module Minor_words))

(* (ns/op, minor words/op) per benchmark, sorted by name; shared with
   the [par] and [scale] sections so BENCH.json carries the same
   numbers that get printed.  Minor words expose allocator pressure —
   the zero-copy decode and batched-event wins stay visible even when a
   noisy CI host blurs the wall-clock numbers. *)
let one_pass () =
  let instances = [ Instance.monotonic_clock; minor_words ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.4) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let estimate tbl name =
    match Hashtbl.find_opt tbl name with
    | Some r -> (
        match Analyze.OLS.estimates r with
        | Some (x :: _) -> Some x
        | Some [] | None -> None)
    | None -> None
  in
  let times = Analyze.all ols Instance.monotonic_clock raw in
  let words = Analyze.all ols minor_words raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name _ -> rows := (name, estimate times name, estimate words name) :: !rows)
    times;
  List.sort compare !rows

(* Per-benchmark minimum over independent passes: on a busy shared host
   a single OLS fit can come out several-fold inflated by scheduler
   interference, and the minimum is the standard noise-robust
   statistic for a lower-bound-style microbenchmark. *)
let passes = 3

let results () =
  let omin a b =
    match (a, b) with
    | Some a, Some b -> Some (Float.min a b)
    | (Some _ as s), None | None, (Some _ as s) -> s
    | None, None -> None
  in
  let merge = List.map2 (fun (n, t, w) (n', t', w') ->
      assert (String.equal n n');
      (n, omin t t', omin w w'))
  in
  let acc = ref (one_pass ()) in
  for _ = 2 to passes do
    acc := merge !acc (one_pass ())
  done;
  !acc

let print results =
  Tables.section "Bechamel micro-benchmarks (per-operation costs behind T2)";
  let cell fmt = function Some x -> Printf.sprintf fmt x | None -> "n/a" in
  let rows =
    List.map
      (fun (name, ns, words) -> [ name; cell "%.1f" ns; cell "%.1f" words ])
      results
  in
  Tables.print ~title:"per-operation cost"
    ~header:[ "benchmark"; "ns/run"; "minor words/run" ]
    rows

let run () = print (results ())
