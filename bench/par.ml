(* The [par] section: sequential vs multi-domain exploration on the
   27-node demo topology, plus a machine-readable BENCH.json that
   seeds the perf trajectory (micro ns/op, exploration throughput,
   parallel speedup, solver-cache effectiveness).

   Determinism is asserted, not assumed: every domain count must
   report the same faults, inputs and distinct paths. *)

type xrun = {
  xr_domains : int;
  xr_wall : float;
  xr_work : float;
  xr_inputs : int;
  xr_shadow_runs : int;
  xr_paths : int;
  xr_faults : int;
}

let explore_with ~domains ~build ~gt ~node =
  let cut =
    Snapshot.Cut.create
      ~speakers:(fun id -> Topology.Build.speaker build id)
      build.Topology.Build.net
  in
  let params = { Dice.Explorer.default_params with Dice.Explorer.domains } in
  let t0 = Unix.gettimeofday () in
  let x = Dice.Explorer.explore_node ~params ~build ~cut ~gt ~node () in
  let wall = Unix.gettimeofday () -. t0 in
  { xr_domains = domains;
    xr_wall = wall;
    xr_work = x.Dice.Explorer.x_work_seconds;
    xr_inputs = x.Dice.Explorer.x_inputs;
    xr_shadow_runs = x.Dice.Explorer.x_shadow_runs;
    xr_paths = x.Dice.Explorer.x_distinct_paths;
    xr_faults = List.length x.Dice.Explorer.x_faults }

(* JSON construction goes through Telemetry.Json + Benchio so the
   [scale] section's results in an existing BENCH.json survive a [par]
   rewrite (and vice versa). *)
module Json = Telemetry.Json

let micro_fields micro =
  let field pick (name, ns, words) =
    Option.map (fun v -> (name, Json.Float (Benchio.round2 v))) (pick ns words)
  in
  ( Json.Obj (List.filter_map (field (fun ns _ -> ns)) micro),
    Json.Obj (List.filter_map (field (fun _ words -> words)) micro) )

let write_bench_json ~path ~micro ~runs ~seq_wall ~cache_hits ~cache_misses
    ~(orch : Dice.Orchestrator.summary) ~(adv : Dice.Orchestrator.summary)
    ~adv_counts:(mangled, dropped, duplicated, crashes) =
  let micro_ns, micro_words = micro_fields micro in
  let xrun r =
    Json.Obj
      [ ("domains", Json.Int r.xr_domains);
        ("wall_s", Json.Float (Benchio.round2 r.xr_wall));
        ("work_s", Json.Float (Benchio.round2 r.xr_work));
        ("inputs", Json.Int r.xr_inputs);
        ("shadow_runs", Json.Int r.xr_shadow_runs);
        ("distinct_paths", Json.Int r.xr_paths);
        ("faults", Json.Int r.xr_faults);
        ("shadows_per_s",
         Json.Float (Benchio.round2 (float_of_int r.xr_shadow_runs /. r.xr_wall)));
        ("speedup_vs_seq", Json.Float (Benchio.round2 (seq_wall /. r.xr_wall))) ]
  in
  Benchio.update ~path
    [ ("schema", Json.String "dice-bench/1");
      (* Interpreting speedup needs the hardware context: on a 1-core
         host the fan-out cannot beat sequential no matter how parallel
         it is. *)
      ("host_cores", Json.Int (Domain.recommended_domain_count ()));
      ("topology", Json.Obj [ ("name", Json.String "demo27"); ("nodes", Json.Int 27) ]);
      ("micro_ns_per_op", micro_ns);
      ("micro_minor_words_per_op", micro_words);
      ("exploration", Json.List (List.map xrun runs));
      ("solver_cache",
       Json.Obj
         [ ("hits", Json.Int cache_hits);
           ("misses", Json.Int cache_misses);
           ("hit_rate",
            Json.Float
              (let total = cache_hits + cache_misses in
               if total = 0 then 0.
               else Benchio.round2 (float_of_int cache_hits /. float_of_int total))) ]);
      (* Supervision health of a short orchestrator run: a regression
         that starts failing or quarantining rounds shows up in the
         trajectory even when raw throughput is unchanged. *)
      ("orchestrator",
       Json.Obj
         [ ("rounds", Json.Int (List.length orch.Dice.Orchestrator.rounds));
           ("ok", Json.Int orch.Dice.Orchestrator.ok_rounds);
           ("degraded", Json.Int orch.Dice.Orchestrator.degraded_rounds);
           ("failed", Json.Int orch.Dice.Orchestrator.failed_rounds);
           ("quarantines", Json.Int (List.length orch.Dice.Orchestrator.quarantines));
           ("leaked_snapshots", Json.Int orch.Dice.Orchestrator.leaked_snapshots);
           ("faults", Json.Int (List.length orch.Dice.Orchestrator.faults)) ]);
      (* Adversarial health: the same deployment under wire-fault
         injection with a seeded fragile-decode bug.  The trajectory
         records whether the stack keeps absorbing codec crashes and
         reporting them as faults instead of failing rounds. *)
      ("adversary",
       Json.Obj
         [ ("rounds", Json.Int (List.length adv.Dice.Orchestrator.rounds));
           ("ok", Json.Int adv.Dice.Orchestrator.ok_rounds);
           ("degraded", Json.Int adv.Dice.Orchestrator.degraded_rounds);
           ("failed", Json.Int adv.Dice.Orchestrator.failed_rounds);
           ("mangled", Json.Int mangled);
           ("dropped", Json.Int dropped);
           ("duplicated", Json.Int duplicated);
           ("crashes_absorbed", Json.Int crashes);
           ("faults", Json.Int (List.length adv.Dice.Orchestrator.faults)) ]) ]

let run () =
  Tables.section "PAR: parallel exploration on the 27-node demo topology";
  let graph = Topology.Demo27.graph in
  let build = Topology.Build.deploy graph in
  Topology.Build.start_all build;
  assert (Topology.Build.converge build);
  let gt = Dice.Checks.ground_truth_of_graph graph in
  let node = 3 in
  Concolic.Solver.clear_cache ();
  Concolic.Solver.reset_stats ();
  (* Warm-up exploration: fills code caches and the solver memo table
     the way a long-running online tester would be running. *)
  ignore (explore_with ~domains:1 ~build ~gt ~node);
  let runs = List.map (fun d -> explore_with ~domains:d ~build ~gt ~node) [ 1; 2; 4 ] in
  let seq = List.hd runs in
  let rows =
    List.map
      (fun r ->
        [ string_of_int r.xr_domains;
          Printf.sprintf "%.3f" r.xr_wall;
          Printf.sprintf "%.3f" r.xr_work;
          string_of_int r.xr_shadow_runs;
          Printf.sprintf "%.1f" (float_of_int r.xr_shadow_runs /. r.xr_wall);
          Printf.sprintf "%.2fx" (seq.xr_wall /. r.xr_wall) ])
      runs
  in
  Tables.print
    ~title:"shadow-replay fan-out (same node, same snapshot state, one explore_node each)"
    ~header:[ "domains"; "wall s"; "work s"; "shadows"; "shadows/s"; "speedup" ]
    rows;
  let cores = Domain.recommended_domain_count () in
  if cores < 2 then
    Tables.note
      "NOTE: only %d core(s) available — wall-clock speedup is bounded by 1.0x here;\n\
       the work/wall ratio on a multicore host is the number to watch.\n"
      cores;
  (* Determinism across domain counts is part of the contract. *)
  List.iter
    (fun r ->
      if
        r.xr_inputs <> seq.xr_inputs || r.xr_paths <> seq.xr_paths
        || r.xr_faults <> seq.xr_faults
      then
        failwith
          (Printf.sprintf
             "par: domains=%d diverged from sequential (inputs %d/%d, paths %d/%d, faults %d/%d)"
             r.xr_domains r.xr_inputs seq.xr_inputs r.xr_paths seq.xr_paths
             r.xr_faults seq.xr_faults))
    runs;
  Tables.note "determinism: all domain counts agree on inputs/paths/faults\n";
  let solver_st = Concolic.Solver.stats () in
  let hits = solver_st.Concolic.Solver.cache_hits in
  let misses = solver_st.Concolic.Solver.cache_misses in
  Tables.note "solver cache: %d hits / %d misses (%.1f%% hit rate)\n" hits misses
    (let t = hits + misses in
     if t = 0 then 0. else 100. *. float_of_int hits /. float_of_int t);
  (* A short supervised run so the trajectory records orchestration
     health (ok/degraded/failed, quarantines, leaks), not just speed. *)
  let orch = Dice.Orchestrator.run ~build ~gt ~rounds:3 () in
  Tables.note "orchestrator: %d ok / %d degraded / %d failed, %d quarantine(s), %d leak(s)\n"
    orch.Dice.Orchestrator.ok_rounds orch.Dice.Orchestrator.degraded_rounds
    orch.Dice.Orchestrator.failed_rounds
    (List.length orch.Dice.Orchestrator.quarantines)
    orch.Dice.Orchestrator.leaked_snapshots;
  (* Adversarial round: mangle the live wire, seed a fragile decoder,
     absorb the resulting crashes, and make sure they surface as
     first-class programming-error faults with zero failed rounds. *)
  let net = build.Topology.Build.net in
  Netsim.Network.set_crash_policy net
    (Netsim.Network.Absorb { restart_after = Some (Netsim.Time.span_sec 2.) });
  let mangler = Netsim.Mangler.create ~seed:0xAD5E ~rate:0.1 () in
  Netsim.Mangler.install mangler net;
  let sp = Topology.Build.speaker build node in
  sp.Bgp.Speaker.sp_set_bugs
    { (sp.Bgp.Speaker.sp_bugs ()) with Bgp.Router.fragile_decode = true };
  let adv_params =
    { Dice.Explorer.default_params with
      snapshot_deadline = Some (Netsim.Time.span_sec 30.);
      mangle_extra = 6;
      mangle_seed = 0x5EED }
  in
  (* Both rounds target the fragile node, and the 20 s inter-round gap
     spans the 30 s keepalive cadence so live traffic actually crosses
     the mangled wire. *)
  let adv =
    Dice.Orchestrator.run ~params:adv_params
      ~interval:(Netsim.Time.span_sec 20.) ~nodes:[ node ] ~build ~gt ~rounds:2 ()
  in
  Netsim.Mangler.remove net;
  let ((mangled, dropped, duplicated, _) as _totals) = Netsim.Mangler.totals () in
  let crashes = List.length (Netsim.Network.crashes net) in
  Tables.note
    "adversary: %d mangled / %d dropped / %d duplicated, %d crash(es) absorbed, \
     %d fault(s), %d failed round(s)\n"
    mangled dropped duplicated crashes
    (List.length adv.Dice.Orchestrator.faults)
    adv.Dice.Orchestrator.failed_rounds;
  Tables.note "collecting micro-benchmark baselines for BENCH.json...\n";
  let micro = Micro.results () in
  write_bench_json ~path:"BENCH.json" ~micro ~runs ~seq_wall:seq.xr_wall
    ~cache_hits:hits ~cache_misses:misses ~orch ~adv
    ~adv_counts:(mangled, dropped, duplicated, crashes);
  Tables.note "wrote BENCH.json\n"
