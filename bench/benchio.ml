(* BENCH.json I/O shared by the [par] and [scale] sections.

   The file is a checked-in baseline that more than one section writes
   to, so updates are read-modify-write: a section replaces only its
   own top-level fields and everything else — e.g. [scale] results when
   [par] runs, and vice versa — survives untouched.  Rendering is
   deterministic (canonical field order, two-level indentation) to keep
   diffs reviewable. *)

module Json = Telemetry.Json

let canonical_order =
  [ "schema"; "host_cores"; "topology"; "micro_ns_per_op";
    "micro_minor_words_per_op"; "exploration"; "solver_cache";
    "orchestrator"; "adversary"; "cascade"; "scale" ]

let read_fields path =
  if not (Sys.file_exists path) then []
  else
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    match Json.of_string s with
    | Ok (Json.Obj fields) -> fields
    | Ok _ | Error _ -> []

(* Top-level objects and lists get one entry per line; anything nested
   deeper renders compact on a single line. *)
let render fields =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  let n = List.length fields in
  List.iteri
    (fun i (k, v) ->
      Buffer.add_string b (Printf.sprintf "  %s: " (Json.to_string (Json.String k)));
      (match v with
      | Json.Obj ((_ :: _) as inner) ->
          Buffer.add_string b "{\n";
          let m = List.length inner in
          List.iteri
            (fun j (ik, iv) ->
              Buffer.add_string b
                (Printf.sprintf "    %s: %s%s\n"
                   (Json.to_string (Json.String ik))
                   (Json.to_string iv)
                   (if j = m - 1 then "" else ",")))
            inner;
          Buffer.add_string b "  }"
      | Json.List ((_ :: _) as inner) ->
          Buffer.add_string b "[\n";
          let m = List.length inner in
          List.iteri
            (fun j iv ->
              Buffer.add_string b
                (Printf.sprintf "    %s%s\n" (Json.to_string iv)
                   (if j = m - 1 then "" else ",")))
            inner;
          Buffer.add_string b "  ]"
      | v -> Buffer.add_string b (Json.to_string v));
      Buffer.add_string b (if i = n - 1 then "\n" else ",\n"))
    fields;
  Buffer.add_string b "}\n";
  Buffer.contents b

(* Replace the given top-level fields, keep every other existing field,
   and write the result in canonical order (unknown fields last, in
   their original order). *)
let update ~path sets =
  let existing = read_fields path in
  let kept =
    List.filter (fun (k, _) -> not (List.mem_assoc k sets)) existing
  in
  let fields = kept @ sets in
  let rank k =
    let rec go i = function
      | [] -> List.length canonical_order
      | x :: _ when String.equal x k -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 canonical_order
  in
  let fields =
    List.stable_sort (fun (a, _) (b, _) -> compare (rank a) (rank b)) fields
  in
  let oc = open_out path in
  output_string oc (render fields);
  close_out oc

(* Benchmark numbers carry sub-ns noise digits; two decimals is what
   the baseline diffs and the gate thresholds care about. *)
let round2 v = Float.of_int (int_of_float ((v *. 100.) +. 0.5)) /. 100.
