(* The deterministic oscillation gadget: Griffin's bare BAD GADGET
   (4 nodes) with a local-pref dispute wheel injected over the three
   providers.  The live system genuinely never converges — every wheel
   member keeps revisiting routes it already abandoned — and the
   cascade analyzer proves it from the telemetry alone: the loc-rib
   flip states close a cycle in the propagation graph and the flap
   spectrum shows a steady beat.

   Run with --no-dispute for the control arm: the same gadget under
   plain Gao-Rexford policies converges, and the analyzer must find
   nothing (the false-positive bound the test suite pins). *)

let () =
  let dispute = not (Array.exists (String.equal "--no-dispute") Sys.argv) in
  let artifact =
    let named = ref None in
    Array.iteri
      (fun i a -> if i > 0 && String.length a > 0 && a.[0] <> '-' then named := Some a)
      Sys.argv;
    match !named with
    | Some p -> p
    | None -> Filename.temp_file "oscillation" ".jsonl"
  in
  let graph = Topology.Gadget.bad_gadget () in
  Printf.printf "deploying %s\n%!" (Topology.Render.summary_line graph);
  let build = Topology.Build.deploy graph in
  Topology.Build.start_all build;
  assert (Topology.Build.converge build);
  let gt = Dice.Checks.ground_truth_of_graph graph in
  if dispute then begin
    Dice.Inject.apply build
      (Dice.Inject.Policy_dispute
         { cycle = Topology.Gadget.wheel; victim = Topology.Gadget.victim });
    Printf.printf "injected dispute wheel over providers [%s] for %s\n%!"
      (String.concat ";" (List.map string_of_int Topology.Gadget.wheel))
      (Bgp.Prefix.to_string
         (Topology.Gao_rexford.prefix_of_node Topology.Gadget.victim))
  end
  else print_endline "control arm: no dispute injected";

  (* Record the run: sim-time clock, JSONL artifact, a short supervised
     exploration so the artifact carries round spans alongside the live
     system's loc-rib trace records. *)
  Telemetry.set_clock (fun () ->
      Netsim.Time.to_us (Netsim.Engine.now build.Topology.Build.engine));
  let _summary =
    Telemetry.with_jsonl artifact
      ~attrs:[ ("example", Telemetry.Json.String "oscillation") ]
      (fun () ->
        Topology.Build.run_for build (Netsim.Time.span_sec 5.);
        Dice.Orchestrator.run ~nodes:Topology.Gadget.wheel ~build ~gt ~rounds:4 ())
  in
  Printf.printf "wrote telemetry to %s\n%!" artifact;

  match Cascade.Timeline.of_file artifact with
  | Error msgs ->
      List.iter prerr_endline msgs;
      exit 2
  | Ok timeline ->
      let propagation, cascades = Cascade.Detect.run timeline in
      Printf.printf
        "timeline: %d record(s), %d loc-rib flip(s); graph: %d state(s), %d \
         edge(s), %d cycle(s)\n"
        timeline.Cascade.Timeline.tl_records
        (List.length timeline.Cascade.Timeline.tl_flips)
        (Cascade.Graph.vertex_count propagation)
        (Cascade.Graph.edge_count propagation)
        (List.length (Cascade.Graph.sccs propagation));
      List.iter (fun c -> Format.printf "  %a@." Cascade.Detect.pp c) cascades;
      if dispute then begin
        assert (
          List.exists
            (fun c -> c.Cascade.Detect.c_kind = Cascade.Detect.Route_oscillation)
            cascades);
        print_endline "route oscillation detected, as expected"
      end
      else begin
        assert (cascades = []);
        print_endline "no cascades, as expected"
      end
