(* Programming errors: DiCE's concolic exploration derives the exact
   inputs that reach seeded bugs in the message-handling code —
   without being told what the bugs are.

   Bug 1: the community handler crashes on a particular community
          (a memory-corruption stand-in).
   Bug 2: the MED comparison is inverted, silently selecting the wrong
          exit; caught by checking selections against a reference run
          of the decision process. *)

let () =
  (* --- Bug 1: crash on a "poisoned" community --- *)
  let params =
    { Topology.Generate.default_params with n_tier1 = 2; n_transit = 3; n_stub = 4 }
  in
  let graph = Topology.Generate.generate ~params (Netsim.Rng.create 21) in
  let build = Topology.Build.deploy graph in
  Topology.Build.start_all build;
  assert (Topology.Build.converge build);
  let gt = Dice.Checks.ground_truth_of_graph graph in
  let poison = Bgp.Community.make 64999 13 in
  Dice.Inject.apply build (Dice.Inject.Crash_bug { at = 2; community = poison });
  let _, hit =
    Dice.Orchestrator.run_until_detection ~build ~gt ~nodes:[ 2 ]
      ~expect:Dice.Fault.Programming_error ()
  in
  (match hit with
  | Some round ->
      print_endline "crash bug found by concolic exploration:";
      List.iter
        (fun (f : Dice.Fault.t) ->
          if String.equal f.Dice.Fault.f_property "handler-crash" then
            Format.printf "  %a@." Dice.Fault.pp f)
        (Dice.Orchestrator.round_exploration_exn round).Dice.Explorer.x_faults
  | None -> print_endline "crash bug NOT found (unexpected)");

  (* --- Bug 2: inverted MED comparison --- *)
  (* MED only discriminates when the routes are comparable: the victim
     router multihomes to equal-preference providers and its operator
     enabled always-compare-med. *)
  let graph2 = Topology.Gadget.bad_gadget () in
  let build2 = Topology.Build.deploy graph2 in
  Topology.Build.start_all build2;
  assert (Topology.Build.converge build2);
  let gt2 = Dice.Checks.ground_truth_of_graph graph2 in
  let victim = Topology.Gadget.victim in
  let sp0 = Topology.Build.speaker build2 victim in
  sp0.Bgp.Speaker.sp_set_config
    { (sp0.Bgp.Speaker.sp_config ()) with Bgp.Config.always_compare_med = true };
  Dice.Inject.apply build2 (Dice.Inject.Inverted_med_bug { at = victim });
  (* Two providers advertise the same external prefix with different
     MEDs: the spec says pick MED 10, the buggy code picks MED 500. *)
  let prefix = Bgp.Prefix.of_string_exn "198.51.100.0/24" in
  let cfg0 = sp0.Bgp.Speaker.sp_config () in
  (match cfg0.Bgp.Config.neighbors with
  | (p1 : Bgp.Config.neighbor) :: (p2 : Bgp.Config.neighbor) :: _ ->
      let announce (peer : Bgp.Config.neighbor) med =
        sp0.Bgp.Speaker.sp_inject_update ~from:peer.Bgp.Config.addr
          { Bgp.Msg.withdrawn = [];
            attrs =
              Some
                (Bgp.Attr.make ~origin:Bgp.Attr.Igp
                   ~as_path:[ Bgp.As_path.Seq [ peer.Bgp.Config.remote_as; 65400 ] ]
                   ~med:(Some med) ~next_hop:peer.Bgp.Config.addr ());
            nlri = [ prefix ] }
      in
      announce p1 10;
      announce p2 500
  | _ -> assert false);
  Topology.Build.run_for build2 (Netsim.Time.span_sec 5.);
  let _, hit2 =
    Dice.Orchestrator.run_until_detection ~build:build2 ~gt:gt2 ~nodes:[ victim ]
      ~expect:Dice.Fault.Programming_error ()
  in
  (match hit2 with
  | Some round ->
      print_endline "inverted-MED bug found via the decision-process-spec property:";
      List.iter
        (fun (f : Dice.Fault.t) ->
          if f.Dice.Fault.f_class = Dice.Fault.Programming_error then
            Format.printf "  %a@." Dice.Fault.pp f)
        (List.filteri (fun i _ -> i < 3)
           (Dice.Orchestrator.round_exploration_exn round).Dice.Explorer.x_faults)
  | None -> print_endline "inverted-MED bug NOT found (unexpected)");

  (* Sanity: what did the buggy router actually select? *)
  (match Bgp.Prefix.Map.find_opt prefix (Bgp.Speaker.loc_rib sp0) with
  | Some route ->
      Printf.printf "buggy router selected MED %s (spec says 10)\n"
        (match route.Bgp.Rib.attrs.Bgp.Attr.med with
        | Some m -> string_of_int m
        | None -> "-")
  | None -> print_endline "prefix not selected (unexpected)")
