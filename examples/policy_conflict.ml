(* Policy conflict: Griffin's BAD GADGET.  Three pairwise-peering
   providers of a common customer each prefer the path to the customer
   via the next provider around the wheel.  No stable routing exists;
   the live system oscillates forever.  DiCE detects the conflict by
   exploring a clone of a consistent snapshot and observing that the
   clone never quiesces / revisits earlier routing states. *)

let () =
  let graph = Topology.Gadget.embedded () in
  Printf.printf "deploying gadget topology: %s\n%!" (Topology.Render.summary_line graph);
  let build = Topology.Build.deploy graph in
  Topology.Build.start_all build;
  assert (Topology.Build.converge build);
  print_endline "live system converged under plain Gao-Rexford policies";

  let gt = Dice.Checks.ground_truth_of_graph graph in
  Dice.Inject.apply build
    (Dice.Inject.Policy_dispute
       { cycle = Topology.Gadget.wheel; victim = Topology.Gadget.victim });
  Printf.printf "injected dispute wheel over providers [%s] for %s\n%!"
    (String.concat ";" (List.map string_of_int Topology.Gadget.wheel))
    (Bgp.Prefix.to_string (Topology.Gao_rexford.prefix_of_node Topology.Gadget.victim));
  Topology.Build.run_for build (Netsim.Time.span_sec 5.);

  let summary, hit =
    Dice.Orchestrator.run_until_detection ~build ~gt ~nodes:Topology.Gadget.wheel
      ~expect:Dice.Fault.Policy_conflict ()
  in
  (match hit with
  | Some round ->
      Printf.printf "policy conflict detected after %d round(s):\n"
        (List.length summary.Dice.Orchestrator.rounds);
      List.iter
        (fun (f : Dice.Fault.t) ->
          if f.Dice.Fault.f_class = Dice.Fault.Policy_conflict then
            Format.printf "  %a@." Dice.Fault.pp f)
        (List.filteri (fun i _ -> i < 4)
           (Dice.Orchestrator.round_exploration_exn round).Dice.Explorer.x_faults)
  | None -> print_endline "NOT DETECTED (unexpected)");

  (* Show that the live system is indeed flapping. *)
  let p = Topology.Gao_rexford.prefix_of_node Topology.Gadget.victim in
  let flips = ref 0 and last = ref (-2) in
  for _ = 1 to 100 do
    Topology.Build.run_for build (Netsim.Time.span_ms 100);
    let sp = Topology.Build.speaker build (List.hd Topology.Gadget.wheel) in
    let via =
      match Bgp.Prefix.Map.find_opt p (Bgp.Speaker.loc_rib sp) with
      | Some route when Bgp.Rib.is_local route -> -1
      | Some route -> Bgp.Router.node_of_addr route.Bgp.Rib.source.Bgp.Rib.peer_addr
      | None -> -3
    in
    if via <> !last then begin
      incr flips;
      last := via
    end
  done;
  Printf.printf "meanwhile the live wheel node changed its selection %d times in 10s\n"
    !flips
