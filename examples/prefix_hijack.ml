(* Operator mistake on the paper's 27-router topology (Figure 1):
   a stub AS fat-fingers a network statement and originates another
   AS's /24.  DiCE's origin-authenticity property flags the hijack at
   every polluted AS, while remote ASes reveal only check digests. *)

let () =
  let graph = Topology.Demo27.graph in
  Printf.printf "deploying %s\n%!" (Topology.Render.summary_line graph);
  let build = Topology.Build.deploy graph in
  Topology.Build.start_all build;
  assert (Topology.Build.converge build);
  Printf.printf "live system converged (%d routes, %d sessions)\n%!"
    (Topology.Build.total_loc_routes build)
    (Topology.Build.established_sessions build);

  (* Stub 21 hijacks stub 11's prefix. *)
  let hijacker = 21 and victim = 11 in
  let gt = Dice.Checks.ground_truth_of_graph graph in
  Dice.Inject.apply build (Dice.Inject.Prefix_hijack { at = hijacker; victim });
  Printf.printf "injected: node %d now also originates %s\n%!" hijacker
    (Bgp.Prefix.to_string (Topology.Gao_rexford.prefix_of_node victim));
  Topology.Build.run_for build (Netsim.Time.span_sec 30.);

  (* Run DiCE round-robin until the operator mistake surfaces. *)
  let summary, hit =
    Dice.Orchestrator.run_until_detection ~build ~gt
      ~expect:Dice.Fault.Operator_mistake ()
  in
  (match hit with
  | Some round ->
      Printf.printf "detected after %d round(s), exploring node %d:\n"
        (List.length summary.Dice.Orchestrator.rounds)
        (Dice.Orchestrator.round_exploration_exn round).Dice.Explorer.x_node;
      List.iter
        (fun (f : Dice.Fault.t) ->
          if f.Dice.Fault.f_class = Dice.Fault.Operator_mistake then
            Format.printf "  %a@." Dice.Fault.pp f)
        (Dice.Orchestrator.round_exploration_exn round).Dice.Explorer.x_faults
  | None -> print_endline "NOT DETECTED (unexpected)");

  (* How far did the hijack spread in the live system? *)
  let stolen = Topology.Gao_rexford.prefix_of_node victim in
  let polluted =
    List.filter
      (fun (_, sp) ->
        match Bgp.Prefix.Map.find_opt stolen (Bgp.Speaker.loc_rib sp) with
        | Some route ->
            let origin =
              match Bgp.As_path.origin_as route.Bgp.Rib.attrs.Bgp.Attr.as_path with
              | Some a -> a
              | None -> (sp.Bgp.Speaker.sp_config ()).Bgp.Config.asn
            in
            origin = Topology.Gao_rexford.asn_of_node hijacker
        | None -> false)
      build.Topology.Build.speakers
  in
  Printf.printf "%d of %d ASes routed the victim prefix to the hijacker\n"
    (List.length polluted) (Topology.Graph.size graph)
