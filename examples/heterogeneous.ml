(* Heterogeneity: a federation in which a third of the ASes run a
   different BGP implementation ("sparrow") than the rest ("bird-like",
   the reference).  DiCE never learns which is which: snapshots,
   clones, exploration inputs and property checks all flow through the
   wire-level speaker interface.

   The scenario seeds a crash bug in a *sparrow* node's community
   handler; DiCE's concolic exploration of that node derives the
   poisonous community and reports the programming error. *)

let () =
  let graph = Topology.Demo27.graph in
  let sparrow_nodes =
    List.filter (fun i -> i mod 3 = 1) (Topology.Graph.node_ids graph)
  in
  let build = Topology.Build.deploy ~sparrow_nodes graph in
  Topology.Build.start_all build;
  assert (Topology.Build.converge build);
  let by_impl =
    List.fold_left
      (fun acc (_, sp) ->
        let impl = sp.Bgp.Speaker.sp_impl in
        let n = Option.value (List.assoc_opt impl acc) ~default:0 in
        (impl, n + 1) :: List.remove_assoc impl acc)
      [] build.Topology.Build.speakers
  in
  Printf.printf "converged mixed deployment: %s; %d routes total\n%!"
    (String.concat ", "
       (List.map (fun (impl, n) -> Printf.sprintf "%d x %s" n impl) by_impl))
    (Topology.Build.total_loc_routes build);

  (* Seed a crash bug in a sparrow transit AS. *)
  let target = 4 in
  assert (List.mem target sparrow_nodes);
  let poison = Bgp.Community.make 64990 99 in
  Dice.Inject.apply build (Dice.Inject.Crash_bug { at = target; community = poison });
  Printf.printf "seeded: community-handler crash in node %d (%s)\n%!" target
    (Topology.Build.speaker build target).Bgp.Speaker.sp_impl;

  let gt = Dice.Checks.ground_truth_of_graph graph in
  let summary, hit =
    Dice.Orchestrator.run_until_detection ~build ~gt ~nodes:[ target ]
      ~expect:Dice.Fault.Programming_error ()
  in
  (match hit with
  | Some round ->
      Printf.printf "detected after %d round(s):\n" (List.length summary.Dice.Orchestrator.rounds);
      List.iter
        (fun (f : Dice.Fault.t) ->
          if String.equal f.Dice.Fault.f_property "handler-crash" then
            Format.printf "  %a@." Dice.Fault.pp f)
        (Dice.Orchestrator.round_exploration_exn round).Dice.Explorer.x_faults
  | None -> print_endline "NOT DETECTED (unexpected)");

  (* The healthy remainder stays clean: one more full sweep. *)
  let sweep = Dice.Orchestrator.run ~build ~gt ~nodes:[ 0; 1; 2; 3 ] ~rounds:4 () in
  let other_faults =
    List.filter
      (fun (f : Dice.Fault.t) -> f.Dice.Fault.f_node <> target)
      sweep.Dice.Orchestrator.faults
  in
  Printf.printf "sweep over 4 healthy nodes (mixed impls): %d faults elsewhere\n"
    (List.length other_faults)
