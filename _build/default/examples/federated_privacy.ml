(* Federation: the explorer never reads remote state.

   Remote ASes run DiCE's property checks locally and answer with a
   digest — property name, ok/violated, and a hash commitment — never
   their RIBs, policies or the violating route itself.  This example
   prints what actually crosses the domain boundary during a hijack
   detection, next to the full evidence the owning AS keeps. *)

let () =
  let params =
    { Topology.Generate.default_params with n_tier1 = 1; n_transit = 2; n_stub = 4 }
  in
  let graph = Topology.Generate.generate ~params (Netsim.Rng.create 3) in
  let build = Topology.Build.deploy graph in
  Topology.Build.start_all build;
  assert (Topology.Build.converge build);
  let gt = Dice.Checks.ground_truth_of_graph graph in
  Dice.Inject.apply build (Dice.Inject.Prefix_hijack { at = 6; victim = 4 });
  Topology.Build.run_for build (Netsim.Time.span_sec 30.);

  (* Explore from node 1 (a transit AS, administratively separate from
     both the hijacker and the victim). *)
  let cut =
    Snapshot.Cut.create
      ~speakers:(fun id -> Topology.Build.speaker build id)
      build.Topology.Build.net
  in
  let x = Dice.Explorer.explore_node ~build ~cut ~gt ~node:1 () in

  Printf.printf "explorer node: 1 (AS%d)\n" (Topology.Gao_rexford.asn_of_node 1);
  Printf.printf "digests received from remote domains (%d total):\n"
    (List.length x.Dice.Explorer.x_digests);
  let violated, ok_count =
    List.fold_left
      (fun (v, k) d ->
        if (d : Dice.Privacy.digest).Dice.Privacy.d_ok then (v, k + 1) else (d :: v, k))
      ([], 0) x.Dice.Explorer.x_digests
  in
  Printf.printf "  %d ok digests (suppressed)\n" ok_count;
  let distinct_violated =
    List.sort_uniq
      (fun (a : Dice.Privacy.digest) b ->
        compare
          (a.Dice.Privacy.d_node, a.Dice.Privacy.d_property)
          (b.Dice.Privacy.d_node, b.Dice.Privacy.d_property))
      violated
  in
  List.iter (fun d -> Format.printf "  %a@." Dice.Privacy.pp_digest d) distinct_violated;
  let agg = Dice.Privacy.aggregate x.Dice.Explorer.x_digests in
  Printf.printf "aggregate: %d digests, %d distinct violations -> system %s\n"
    agg.Dice.Privacy.total
    (List.length (List.sort_uniq compare agg.Dice.Privacy.violations))
    (if Dice.Privacy.all_ok agg then "healthy" else "FAULTY");

  (* What the explorer's own domain sees in full detail: *)
  print_endline "local (own-domain) fault reports, full evidence:";
  List.iter
    (fun (f : Dice.Fault.t) ->
      if f.Dice.Fault.f_node = 1 then Format.printf "  %a@." Dice.Fault.pp f)
    x.Dice.Explorer.x_faults;
  print_endline
    "note: remote violations above carry only \"remote check digest reported a\n\
     violation\" -- the evidence string never left its domain."
