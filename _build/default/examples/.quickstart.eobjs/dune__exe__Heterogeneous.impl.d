examples/heterogeneous.ml: Bgp Dice Format List Option Printf String Topology
