examples/federated_privacy.ml: Dice Format List Netsim Printf Snapshot Topology
