examples/prefix_hijack.mli:
