examples/programming_error.mli:
