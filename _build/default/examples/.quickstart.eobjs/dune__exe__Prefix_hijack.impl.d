examples/prefix_hijack.ml: Bgp Dice Format List Netsim Printf Topology
