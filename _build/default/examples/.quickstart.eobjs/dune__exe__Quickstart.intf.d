examples/quickstart.mli:
