examples/policy_conflict.mli:
