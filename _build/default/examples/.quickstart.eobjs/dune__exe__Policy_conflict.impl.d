examples/policy_conflict.ml: Bgp Dice Format List Netsim Printf String Topology
