examples/quickstart.ml: Bgp Dice Format List Netsim Printf String Topology
