examples/programming_error.ml: Bgp Dice Format List Netsim Printf String Topology
