examples/federated_privacy.mli:
