examples/heterogeneous.mli:
