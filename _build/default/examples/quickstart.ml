(* Quickstart: deploy a small Internet-like topology, inject a
   misconfiguration and a crash bug, and let DiCE find both. *)

let () =
  (* 1. A 9-AS topology: 1 tier-1, 3 transit, 5 stubs. *)
  let params =
    { Topology.Generate.default_params with n_tier1 = 1; n_transit = 3; n_stub = 5 }
  in
  let graph = Topology.Generate.generate ~params (Netsim.Rng.create 7) in
  Printf.printf "topology: %s\n%!" (Topology.Render.summary_line graph);
  let build = Topology.Build.deploy graph in
  Topology.Build.start_all build;
  let converged = Topology.Build.converge build in
  Printf.printf "live system converged: %b (%d routes)\n%!" converged
    (Topology.Build.total_loc_routes build);

  (* 2. Inject faults: a stub hijacks another stub's prefix, and one
     transit router carries a crash bug in its community handler. *)
  let gt = Dice.Checks.ground_truth_of_graph graph in
  Dice.Inject.apply build (Dice.Inject.Prefix_hijack { at = 8; victim = 5 });
  Dice.Inject.apply build
    (Dice.Inject.Crash_bug { at = 1; community = Bgp.Community.make 65000 666 });
  Topology.Build.run_for build (Netsim.Time.span_sec 30.);

  (* 3. Run DiCE over every node until both fault classes surface. *)
  let summary =
    Dice.Orchestrator.run ~build ~gt ~rounds:(Topology.Graph.size graph) ()
  in
  Format.printf "%a@." Dice.Orchestrator.pp_summary summary;
  let classes =
    List.sort_uniq compare
      (List.map (fun (f : Dice.Fault.t) -> f.Dice.Fault.f_class) summary.Dice.Orchestrator.faults)
  in
  Printf.printf "detected fault classes: %s\n"
    (String.concat ", " (List.map Dice.Fault.class_to_string classes))
