type input = (string * int) list

type t = {
  given : input;
  fields : (string, Cval.t) Hashtbl.t;
  mutable rev_path : (Expr.t * bool) list;
  mutable branch_count : int;
}

let create given =
  { given; fields = Hashtbl.create 16; rev_path = []; branch_count = 0 }

let field t name ~lo ~hi ~default =
  match Hashtbl.find_opt t.fields name with
  | Some cv -> cv
  | None ->
      let v = Expr.var name ~lo ~hi in
      let value =
        match List.assoc_opt name t.given with
        | Some x -> max lo (min hi x)
        | None -> max lo (min hi default)
      in
      let cv = Cval.of_var v value in
      Hashtbl.add t.fields name cv;
      cv

let branch t cv =
  t.branch_count <- t.branch_count + 1;
  let taken = Cval.truthy cv in
  if Cval.is_symbolic cv then t.rev_path <- (cv.Cval.sym, taken) :: t.rev_path;
  taken

let path t = List.rev t.rev_path
let branches t = t.branch_count
let input t = t.given

let input_update base overrides =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) base;
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) overrides;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let input_equal a b =
  let norm i = List.sort (fun (x, _) (y, _) -> String.compare x y) i in
  norm a = norm b

let input_to_string i =
  String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) i)
