(** Constraint solver for path conditions.

    Interval (bounds) propagation with a contractor per operator,
    followed by branch-and-propagate search over the remaining domains.
    Complete enough for the linear / bitfield constraints that message
    parsing and policy evaluation generate; answers:

    - [Sat model] — the model is {e verified} by concrete evaluation of
      every constraint before being returned, so SAT answers are sound
      unconditionally;
    - [Unsat] — sound because contractors only ever remove values that
      cannot appear in any solution;
    - [Unknown] — search budget exhausted. *)

type model = (Expr.var * int) list

type outcome = Sat of model | Unsat | Unknown

type stats = {
  mutable solved_sat : int;
  mutable solved_unsat : int;
  mutable solved_unknown : int;
  mutable search_nodes : int;
}

val stats : stats
(** Global counters for the benchmark harness. *)

val reset_stats : unit -> unit

val solve : ?max_nodes:int -> Expr.t list -> outcome
(** [max_nodes] bounds the search tree (default 20_000). *)

val check : model -> Expr.t list -> bool
(** Do all constraints evaluate true under the model (unbound variables
    default to their domain minimum)? *)

val model_value : model -> Expr.var -> int option
val pp_model : Format.formatter -> model -> unit
