type t = { conc : int; sym : Expr.t }

let concrete n = { conc = n; sym = Expr.Const n }
let of_var v n = { conc = n; sym = Expr.Var v }

let is_symbolic t = match t.sym with Expr.Const _ -> false | _ -> true
let to_int t = t.conc
let truthy t = t.conc <> 0

let b2i b = if b then 1 else 0

(* Keep the symbolic side small: fold when both sides are concrete. *)
let lift2 conc_op sym_op a b =
  let conc = conc_op a.conc b.conc in
  let sym =
    match (a.sym, b.sym) with
    | Expr.Const _, Expr.Const _ -> Expr.Const conc
    | sa, sb -> sym_op sa sb
  in
  { conc; sym }

let add = lift2 ( + ) (fun a b -> Expr.Add (a, b))
let sub = lift2 ( - ) (fun a b -> Expr.Sub (a, b))
let mul = lift2 ( * ) (fun a b -> Expr.Mul (a, b))
let band = lift2 ( land ) (fun a b -> Expr.Band (a, b))
let eq = lift2 (fun x y -> b2i (x = y)) (fun a b -> Expr.Eq (a, b))
let ne = lift2 (fun x y -> b2i (x <> y)) (fun a b -> Expr.Not (Expr.Eq (a, b)))
let lt = lift2 (fun x y -> b2i (x < y)) (fun a b -> Expr.Lt (a, b))
let le = lift2 (fun x y -> b2i (x <= y)) (fun a b -> Expr.Le (a, b))
let gt = lift2 (fun x y -> b2i (x > y)) (fun a b -> Expr.Lt (b, a))
let ge = lift2 (fun x y -> b2i (x >= y)) (fun a b -> Expr.Le (b, a))
let conj = lift2 (fun x y -> b2i (x <> 0 && y <> 0)) (fun a b -> Expr.And (a, b))
let disj = lift2 (fun x y -> b2i (x <> 0 || y <> 0)) (fun a b -> Expr.Or (a, b))

let neg a =
  { conc = b2i (a.conc = 0);
    sym =
      (match a.sym with
      | Expr.Const _ -> Expr.Const (b2i (a.conc = 0))
      | s -> Expr.negate s) }

let eq_const a n = eq a (concrete n)
let in_range a ~lo ~hi = conj (ge a (concrete lo)) (le a (concrete hi))

let pp ppf t = Format.fprintf ppf "%d{%a}" t.conc Expr.pp t.sym
