lib/concolic/solver.ml: Expr Format Hashtbl Int Interval List Map Option
