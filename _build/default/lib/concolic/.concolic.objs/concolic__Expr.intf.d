lib/concolic/expr.mli: Format
