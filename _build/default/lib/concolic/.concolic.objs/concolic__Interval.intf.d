lib/concolic/interval.mli: Expr Format
