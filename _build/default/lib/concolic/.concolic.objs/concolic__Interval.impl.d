lib/concolic/interval.ml: Expr Format List
