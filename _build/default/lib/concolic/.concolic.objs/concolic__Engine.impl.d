lib/concolic/engine.ml: Array Char Ctx Expr Hashtbl List Queue Solver String
