lib/concolic/ctx.mli: Cval Expr
