lib/concolic/expr.ml: Format Hashtbl List Stdlib
