lib/concolic/cval.mli: Expr Format
