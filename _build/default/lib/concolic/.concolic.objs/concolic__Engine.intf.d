lib/concolic/engine.mli: Ctx Expr
