lib/concolic/cval.ml: Expr Format
