lib/concolic/solver.mli: Expr Format
