lib/concolic/grammar.mli: Netsim
