lib/concolic/ctx.ml: Cval Expr Hashtbl List Printf String
