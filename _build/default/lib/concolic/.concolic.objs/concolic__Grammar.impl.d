lib/concolic/grammar.ml: Array List Netsim
