(** The concolic exploration loop (the Oasis substitute).

    Generational search (Godefroid et al.): execute the program on a
    concrete input while collecting the path condition; for every
    symbolic branch past the input's generation bound, negate it,
    keep the prefix, and ask the solver for an input that drives
    execution down the other side.  Each satisfiable model becomes a
    new input in the worklist. *)

type 'a outcome = Value of 'a | Raised of exn

type 'a run = {
  run_input : Ctx.input;
  run_path : (Expr.t * bool) list;
  run_outcome : 'a outcome;
}

type 'a result = {
  runs : 'a run list;  (** in execution order *)
  distinct_paths : int;
  crashes : 'a run list;  (** runs whose outcome is [Raised] *)
  inputs_executed : int;
  solver_calls : int;
  solver_sat : int;
}

type limits = {
  max_inputs : int;  (** stop after this many executions *)
  max_branches : int;  (** negate at most this many branches per run *)
  solver_nodes : int;  (** per-query solver budget *)
}

val default_limits : limits

val explore : ?limits:limits -> seeds:Ctx.input list -> (Ctx.t -> 'a) -> 'a result
(** Exceptions escaping the program are captured as [Raised] (crash
    candidates), never propagated — except [Stack_overflow] and
    [Out_of_memory], which are re-raised. *)

val path_signature : (Expr.t * bool) list -> int
(** Stable hash of a path (used for distinct-path counting). *)
