(** Grammar-based fuzzing combinators.

    A ['a t] is a production that samples one valid derivation.  Used
    to cheaply generate large numbers of structurally valid inputs
    (paper insight (iii)); the concolic engine supplies the interesting
    field values, the grammar supplies the surrounding structure. *)

type 'a t

val run : 'a t -> Netsim.Rng.t -> 'a

val pure : 'a -> 'a t
val map : ('a -> 'b) -> 'a t -> 'b t
val map2 : ('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t
val bind : 'a t -> ('a -> 'b t) -> 'b t
val both : 'a t -> 'b t -> ('a * 'b) t

val int_range : int -> int -> 'a t -> ('a -> int -> 'b) -> 'b t
(** Awkward shape avoided below; prefer [range]. *)

val range : int -> int -> int t
(** Uniform in [\[lo, hi\]]. *)

val choose : 'a t list -> 'a t
(** Uniform choice of production.  @raise Invalid_argument on []. *)

val weighted : (int * 'a t) list -> 'a t
(** Choice by positive integer weight. *)

val opt : float -> 'a t -> 'a option t
(** [Some] with the given probability. *)

val list_of : min:int -> max:int -> 'a t -> 'a list t
val shuffle_of : 'a list -> 'a list t
val one_of : 'a list -> 'a t
(** Uniform element.  @raise Invalid_argument on []. *)

val chance : float -> bool t
