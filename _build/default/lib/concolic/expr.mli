(** Symbolic expressions.

    Integer-valued; booleans are 0/1.  Variables carry a bounded domain
    (message fields have natural bit-widths), which is what makes the
    solver's interval reasoning effective. *)

type var = private {
  v_id : int;  (** unique per name *)
  v_name : string;
  v_lo : int;
  v_hi : int;
}

val var : string -> lo:int -> hi:int -> var
(** Interned by (name, domain): the same name and bounds always yield
    the same variable, so constraints from different runs over the same
    input field talk about the same thing.
    @raise Invalid_argument on an empty domain. *)

type t =
  | Const of int
  | Var of var
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Band of t * t  (** bitwise and *)
  | Eq of t * t
  | Lt of t * t
  | Le of t * t
  | And of t * t
  | Or of t * t
  | Not of t

val const : int -> t
val tru : t
val fls : t

val eval : (var -> int) -> t -> int
(** Boolean nodes evaluate to 0/1. *)

val is_true : (var -> int) -> t -> bool
val vars : t -> var list
(** Deduplicated, in first-occurrence order. *)

val negate : t -> t
(** Logical negation, pushing through comparisons where cheap
    ([negate (Lt a b)] is [Le b a]). *)

val size : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
