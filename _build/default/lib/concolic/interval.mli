(** Closed integer intervals for bounds propagation. *)

type t = { lo : int; hi : int }

val make : int -> int -> t
(** @raise Invalid_argument if [lo > hi]. *)

val point : int -> t
val of_var : Expr.var -> t
val is_point : t -> bool
val width : t -> int
val mem : int -> t -> bool

val inter : t -> t -> t option
(** [None] when disjoint. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val band : t -> t -> t
(** Conservative: exact for non-negative point masks, otherwise the
    full [0, max] envelope. *)

val pp : Format.formatter -> t -> unit
