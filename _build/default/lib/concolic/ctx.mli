(** Concolic execution context for one run of an instrumented handler.

    The context maps named symbolic input fields to concolic values and
    records the path condition at every branch the handler takes. *)

type input = (string * int) list
(** An assignment of concrete values to input field names. *)

type t

val create : input -> t

val field : t -> string -> lo:int -> hi:int -> default:int -> Cval.t
(** Declare (or re-read) a symbolic input field.  Its concrete value
    comes from the run's input, falling back to [default]; the value is
    clipped into the domain.  Repeated reads of the same name in one
    run return the same concolic value. *)

val branch : t -> Cval.t -> bool
(** The instrumented [if]: returns the concrete truth value and, when
    the condition is symbolic, appends it to the path condition in the
    direction taken. *)

val path : t -> (Expr.t * bool) list
(** Branch conditions in execution order, each with the direction
    taken. *)

val branches : t -> int
(** Total branches executed (symbolic or not). *)

val input : t -> input
val input_update : input -> (string * int) list -> input
(** Right-biased merge, result sorted by field name. *)

val input_equal : input -> input -> bool
val input_to_string : input -> string
