type 'a outcome = Value of 'a | Raised of exn

type 'a run = {
  run_input : Ctx.input;
  run_path : (Expr.t * bool) list;
  run_outcome : 'a outcome;
}

type 'a result = {
  runs : 'a run list;
  distinct_paths : int;
  crashes : 'a run list;
  inputs_executed : int;
  solver_calls : int;
  solver_sat : int;
}

type limits = { max_inputs : int; max_branches : int; solver_nodes : int }

let default_limits = { max_inputs = 200; max_branches = 64; solver_nodes = 20_000 }

(* FNV-1a over the rendered path: [Hashtbl.hash] only samples a prefix
   of large structures, which collapsed distinct paths sharing their
   first branches. *)
let path_signature path =
  let h = ref 0x3f29ce484222325 in
  let feed_char c =
    h := (!h lxor Char.code c) * 0x100000001b3
  in
  let feed_string s = String.iter feed_char s in
  List.iter
    (fun (e, taken) ->
      feed_char (if taken then 'T' else 'F');
      feed_string (Expr.to_string e);
      feed_char ';')
    path;
  !h land max_int

(* A worklist entry: the input to execute and the generation bound —
   the index of the first branch this child is allowed to negate, which
   prevents rediscovering its ancestors' siblings. *)
type pending = { p_input : Ctx.input; p_bound : int }

let explore ?(limits = default_limits) ~seeds program =
  let queue = Queue.create () in
  let seen_inputs = Hashtbl.create 64 in
  let seen_paths = Hashtbl.create 64 in
  let runs = ref [] in
  let executed = ref 0 in
  let solver_calls = ref 0 in
  let solver_sat = ref 0 in
  let canon input = Ctx.input_update [] input in
  let remember input = Hashtbl.replace seen_inputs (canon input) () in
  let known input = Hashtbl.mem seen_inputs (canon input) in
  (* [seen_inputs] marks enqueued-or-executed inputs, so every queue
     entry is unique and runs exactly once. *)
  let enqueue entry =
    if not (known entry.p_input) then begin
      remember entry.p_input;
      Queue.add entry queue
    end
  in
  List.iter (fun s -> enqueue { p_input = s; p_bound = 0 }) seeds;
  if Queue.is_empty queue then enqueue { p_input = []; p_bound = 0 };
  while (not (Queue.is_empty queue)) && !executed < limits.max_inputs do
    let { p_input; p_bound } = Queue.pop queue in
    begin
      let ctx = Ctx.create p_input in
      let outcome =
        match program ctx with
        | v -> Value v
        | exception ((Stack_overflow | Out_of_memory) as fatal) -> raise fatal
        | exception e -> Raised e
      in
      incr executed;
      let path = Ctx.path ctx in
      Hashtbl.replace seen_paths (path_signature path) ();
      runs := { run_input = p_input; run_path = path; run_outcome = outcome } :: !runs;
      (* Generational expansion. *)
      let arr = Array.of_list path in
      let upto = min (Array.length arr) limits.max_branches in
      for i = max 0 p_bound to upto - 1 do
        let prefix = Array.to_list (Array.sub arr 0 i) in
        let cond, taken = arr.(i) in
        let flipped = if taken then Expr.negate cond else cond in
        let constraints =
          flipped
          :: List.map (fun (e, tk) -> if tk then e else Expr.negate e) prefix
        in
        incr solver_calls;
        match Solver.solve ~max_nodes:limits.solver_nodes constraints with
        | Solver.Sat model ->
            incr solver_sat;
            let overrides =
              List.map (fun ((v : Expr.var), x) -> (v.Expr.v_name, x)) model
            in
            let child = Ctx.input_update p_input overrides in
            enqueue { p_input = child; p_bound = i + 1 }
        | Solver.Unsat | Solver.Unknown -> ()
      done
    end
  done;
  let all_runs = List.rev !runs in
  { runs = all_runs;
    distinct_paths = Hashtbl.length seen_paths;
    crashes = List.filter (fun r -> match r.run_outcome with Raised _ -> true | Value _ -> false) all_runs;
    inputs_executed = !executed;
    solver_calls = !solver_calls;
    solver_sat = !solver_sat }
