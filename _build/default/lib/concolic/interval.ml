type t = { lo : int; hi : int }

let make lo hi =
  if lo > hi then invalid_arg "Interval.make: empty";
  { lo; hi }

let point n = { lo = n; hi = n }
let of_var (v : Expr.var) = { lo = v.Expr.v_lo; hi = v.Expr.v_hi }
let is_point t = t.lo = t.hi
let width t = t.hi - t.lo + 1
let mem n t = n >= t.lo && n <= t.hi

let inter a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if lo > hi then None else Some { lo; hi }

let add a b = { lo = a.lo + b.lo; hi = a.hi + b.hi }
let sub a b = { lo = a.lo - b.hi; hi = a.hi - b.lo }

let mul a b =
  let products = [ a.lo * b.lo; a.lo * b.hi; a.hi * b.lo; a.hi * b.hi ] in
  { lo = List.fold_left min max_int products;
    hi = List.fold_left max min_int products }

let band a b =
  if is_point b && b.lo >= 0 && a.lo >= 0 then
    (* x land mask is within [0, mask] (and within [0, a.hi]). *)
    { lo = 0; hi = min a.hi b.lo }
  else if is_point a && a.lo >= 0 && b.lo >= 0 then { lo = 0; hi = min b.hi a.lo }
  else if a.lo >= 0 && b.lo >= 0 then { lo = 0; hi = min a.hi b.hi }
  else { lo = min a.lo b.lo; hi = max a.hi b.hi }

let pp ppf t = Format.fprintf ppf "[%d,%d]" t.lo t.hi
