(** Concolic values: a concrete integer paired with its symbolic
    shadow.

    Instrumented code computes on these instead of plain ints — the
    concrete half drives real execution, the symbolic half accumulates
    the expression that the value denotes in terms of the symbolic
    inputs.  Mirrors source-level instrumentation of BIRD in the
    paper's prototype. *)

type t = { conc : int; sym : Expr.t }

val concrete : int -> t
(** A value with no symbolic content. *)

val of_var : Expr.var -> int -> t
(** A symbolic input with its current concrete value. *)

val is_symbolic : t -> bool
val to_int : t -> int
val truthy : t -> bool

(* Arithmetic *)
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val band : t -> t -> t

(* Comparisons (results are 0/1 booleans) *)
val eq : t -> t -> t
val ne : t -> t -> t
val lt : t -> t -> t
val le : t -> t -> t
val gt : t -> t -> t
val ge : t -> t -> t

(* Boolean connectives *)
val conj : t -> t -> t
val disj : t -> t -> t
val neg : t -> t

val eq_const : t -> int -> t
val in_range : t -> lo:int -> hi:int -> t
val pp : Format.formatter -> t -> unit
