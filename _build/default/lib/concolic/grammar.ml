type 'a t = Netsim.Rng.t -> 'a

let run t rng = t rng

let pure x _ = x
let map f t rng = f (t rng)
let map2 f a b rng =
  let x = a rng in
  let y = b rng in
  f x y

let bind t f rng = f (t rng) rng
let both a b = map2 (fun x y -> (x, y)) a b

let range lo hi rng = Netsim.Rng.int_in rng lo hi

let int_range lo hi t f = map2 (fun a n -> f a n) t (range lo hi)

let choose = function
  | [] -> invalid_arg "Grammar.choose: empty"
  | ps -> fun rng -> (List.nth ps (Netsim.Rng.int rng (List.length ps))) rng

let weighted = function
  | [] -> invalid_arg "Grammar.weighted: empty"
  | ps ->
      let total = List.fold_left (fun acc (w, _) -> acc + w) 0 ps in
      if total <= 0 then invalid_arg "Grammar.weighted: weights must be positive";
      fun rng ->
        let roll = Netsim.Rng.int rng total in
        let rec pick acc = function
          | [] -> assert false
          | (w, p) :: rest -> if roll < acc + w then p rng else pick (acc + w) rest
        in
        pick 0 ps

let opt p t rng = if Netsim.Rng.chance rng p then Some (t rng) else None

let list_of ~min ~max t rng =
  let n = Netsim.Rng.int_in rng min max in
  List.init n (fun _ -> t rng)

let shuffle_of l rng =
  let a = Array.of_list l in
  Netsim.Rng.shuffle rng a;
  Array.to_list a

let one_of l rng = Netsim.Rng.pick rng l

let chance p rng = Netsim.Rng.chance rng p
