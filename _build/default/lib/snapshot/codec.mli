(** Checkpoint serialization.

    Renders a speaker's checkpoint (configuration + routing state +
    session set) to a self-contained byte string and reconstructs a
    live speaker from it.  Route entries reuse the RFC 4271 wire
    encoding — the one format every implementation already understands
    — so a checkpoint exported by one implementation can be imported as
    another (the importing domain instantiates its own code, which is
    exactly the heterogeneous/federated transfer story).

    The textual envelope is versioned ([dice-checkpoint v1]). *)

val export : Bgp.Speaker.t -> string

val import :
  ?impl:[ `Bird_like | `Sparrow ] ->
  net:string Netsim.Network.t ->
  string ->
  (Bgp.Speaker.t, string) result
(** Rebuild a speaker on [net] (its node id must exist there).  The
    routing state is restored exactly; sessions listed as established
    come back established.  [impl] overrides the implementation to
    instantiate (default: whatever the checkpoint recorded, falling
    back to the reference implementation for unknown names). *)

val route_entries : string -> int
(** Number of route records in a serialized checkpoint (diagnostics). *)
