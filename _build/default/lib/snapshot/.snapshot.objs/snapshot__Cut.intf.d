lib/snapshot/cut.mli: Bgp Checkpoint Netsim
