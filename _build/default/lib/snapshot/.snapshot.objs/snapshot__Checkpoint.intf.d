lib/snapshot/checkpoint.mli: Bgp Format Netsim
