lib/snapshot/checkpoint.ml: Bgp Format Lazy Netsim
