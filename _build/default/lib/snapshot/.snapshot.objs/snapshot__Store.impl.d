lib/snapshot/store.ml: Bgp Buffer Checkpoint Cut Digest Hashtbl List Netsim Printf
