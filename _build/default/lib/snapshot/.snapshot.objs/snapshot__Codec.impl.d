lib/snapshot/codec.ml: Bgp Buffer Char Format List Printf String
