lib/snapshot/cut.ml: Bgp Checkpoint Hashtbl Int List Netsim
