lib/snapshot/codec.mli: Bgp Netsim
