lib/snapshot/store.mli: Bgp Cut Netsim
