let hex_of_string s =
  let b = Buffer.create (String.length s * 2) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let string_of_hex h =
  if String.length h mod 2 <> 0 then failwith "odd hex length";
  String.init (String.length h / 2) (fun i ->
      Char.chr (int_of_string ("0x" ^ String.sub h (2 * i) 2)))

(* One route = one single-prefix UPDATE on the wire. *)
let encode_route prefix (attrs : Bgp.Attr.t) =
  hex_of_string
    (Bgp.Wire.encode
       (Bgp.Msg.Update { withdrawn = []; attrs = Some attrs; nlri = [ prefix ] }))

let decode_route hexed =
  match Bgp.Wire.decode (string_of_hex hexed) with
  | Ok (Bgp.Msg.Update { attrs = Some attrs; nlri = [ prefix ]; _ }) -> (prefix, attrs)
  | Ok _ -> failwith "checkpoint route record is not a single-prefix update"
  | Error e -> failwith (Format.asprintf "bad route record: %a" Bgp.Wire.pp_error e)

let encode_source (s : Bgp.Rib.source) =
  Printf.sprintf "%s %d %s %d %d"
    (Bgp.Ipv4.to_string s.Bgp.Rib.peer_addr)
    s.Bgp.Rib.peer_as
    (Bgp.Ipv4.to_string s.Bgp.Rib.peer_bgp_id)
    (if s.Bgp.Rib.ebgp then 1 else 0)
    s.Bgp.Rib.igp_metric

let decode_source addr asn bgp_id ebgp metric =
  { Bgp.Rib.peer_addr = Bgp.Ipv4.of_string_exn addr;
    peer_as = int_of_string asn;
    peer_bgp_id = Bgp.Ipv4.of_string_exn bgp_id;
    ebgp = ebgp = "1";
    igp_metric = int_of_string metric }

let export (sp : Bgp.Speaker.t) =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  let rib = sp.Bgp.Speaker.sp_rib () in
  let config_text = Bgp.Config.to_text (sp.Bgp.Speaker.sp_config ()) in
  line "dice-checkpoint v1";
  line "node %d" sp.Bgp.Speaker.sp_node;
  line "impl %s" sp.Bgp.Speaker.sp_impl;
  line "config %d" (String.length config_text);
  Buffer.add_string b config_text;
  line "established %s"
    (String.concat " " (List.map Bgp.Ipv4.to_string (sp.Bgp.Speaker.sp_established ())));
  Bgp.Ipv4.Map.iter
    (fun peer pm ->
      Bgp.Prefix.Map.iter
        (fun prefix (r : Bgp.Rib.route) ->
          line "adj-in %s %s %s" (Bgp.Ipv4.to_string peer)
            (encode_source r.Bgp.Rib.source)
            (encode_route prefix r.Bgp.Rib.attrs))
        pm)
    rib.Bgp.Rib.adj_in;
  Bgp.Prefix.Map.iter
    (fun prefix (r : Bgp.Rib.route) ->
      line "loc %s %s" (encode_source r.Bgp.Rib.source) (encode_route prefix r.Bgp.Rib.attrs))
    rib.Bgp.Rib.loc;
  Bgp.Ipv4.Map.iter
    (fun peer pm ->
      Bgp.Prefix.Map.iter
        (fun prefix attrs ->
          line "adj-out %s %s" (Bgp.Ipv4.to_string peer) (encode_route prefix attrs))
        pm)
    rib.Bgp.Rib.adj_out;
  line "end";
  Buffer.contents b

type parsed = {
  p_node : int;
  p_impl : string;
  p_config : Bgp.Config.t;
  p_established : Bgp.Ipv4.t list;
  p_rib : Bgp.Rib.t;
}

let parse text =
  (* The config block is length-delimited raw text; parse around it. *)
  let fail fmt = Printf.ksprintf failwith fmt in
  let len = String.length text in
  let pos = ref 0 in
  let next_line () =
    if !pos >= len then fail "unexpected end of checkpoint";
    let stop = match String.index_from_opt text !pos '\n' with Some i -> i | None -> len in
    let l = String.sub text !pos (stop - !pos) in
    pos := stop + 1;
    l
  in
  let words s = String.split_on_char ' ' s |> List.filter (fun w -> w <> "") in
  (match next_line () with
  | "dice-checkpoint v1" -> ()
  | other -> fail "bad header %S" other);
  let node =
    match words (next_line ()) with
    | [ "node"; n ] -> int_of_string n
    | _ -> fail "expected node line"
  in
  let impl =
    match words (next_line ()) with
    | [ "impl"; name ] -> name
    | _ -> fail "expected impl line"
  in
  let config =
    match words (next_line ()) with
    | [ "config"; n ] ->
        let n = int_of_string n in
        if !pos + n > len then fail "truncated config block";
        let raw = String.sub text !pos n in
        pos := !pos + n;
        (match Bgp.Config.parse raw with
        | Ok cfg -> cfg
        | Error e -> fail "embedded config: %s" (Format.asprintf "%a" Bgp.Config.pp_parse_error e))
    | _ -> fail "expected config line"
  in
  let established =
    match words (next_line ()) with
    | "established" :: addrs -> List.map Bgp.Ipv4.of_string_exn addrs
    | _ -> fail "expected established line"
  in
  let rib = ref Bgp.Rib.empty in
  let rec records () =
    match words (next_line ()) with
    | [ "end" ] -> ()
    | [ "adj-in"; peer; a; asn; bid; ebgp; metric; route ] ->
        let prefix, attrs = decode_route route in
        rib :=
          Bgp.Rib.adj_in_set (Bgp.Ipv4.of_string_exn peer) prefix
            { Bgp.Rib.attrs; source = decode_source a asn bid ebgp metric }
            !rib;
        records ()
    | [ "loc"; a; asn; bid; ebgp; metric; route ] ->
        let prefix, attrs = decode_route route in
        rib :=
          Bgp.Rib.loc_set prefix
            { Bgp.Rib.attrs; source = decode_source a asn bid ebgp metric }
            !rib;
        records ()
    | [ "adj-out"; peer; route ] ->
        let prefix, attrs = decode_route route in
        rib := Bgp.Rib.adj_out_set (Bgp.Ipv4.of_string_exn peer) prefix attrs !rib;
        records ()
    | l -> fail "cannot parse record: %s" (String.concat " " l)
  in
  records ();
  { p_node = node; p_impl = impl; p_config = config; p_established = established;
    p_rib = !rib }

let import ?impl ~net text =
  match parse text with
  | exception Failure msg -> Error msg
  | p -> (
      let impl_name =
        match impl with
        | Some `Bird_like -> "bird-like"
        | Some `Sparrow -> "sparrow"
        | None -> p.p_impl
      in
      match impl_name with
      | "sparrow" ->
          let s =
            Bgp.Sparrow.create ~liveness_timers:false ~net ~node:p.p_node p.p_config
          in
          Bgp.Sparrow.restore_view s ~rib:p.p_rib ~established:p.p_established;
          Ok (Bgp.Sparrow.speaker s)
      | _ ->
          let r =
            Bgp.Router.create ~auto_restart:false ~liveness_timers:false ~net
              ~node:p.p_node p.p_config
          in
          let sessions =
            List.fold_left
              (fun acc peer ->
                Bgp.Ipv4.Map.add peer
                  { Bgp.Fsm.state = Bgp.Fsm.Established;
                    peer_bgp_id = Some peer;
                    negotiated_hold = p.p_config.Bgp.Config.hold_time }
                  acc)
              Bgp.Ipv4.Map.empty p.p_established
          in
          Bgp.Router.restore r { Bgp.Router.rib = p.p_rib; sessions };
          Ok (Bgp.Speaker.of_router r))

let route_entries text =
  String.split_on_char '\n' text
  |> List.filter (fun l ->
         String.length l > 4
         && (String.sub l 0 4 = "adj-" || String.sub l 0 4 = "loc "))
  |> List.length
