type t = {
  node : int;
  taken_at : Netsim.Time.t;
  image : Bgp.Speaker.capture;
}

let take ~at speaker =
  { node = speaker.Bgp.Speaker.sp_node;
    taken_at = at;
    image = Bgp.Speaker.capture speaker }

let respawn t ~net ~bugs = t.image.Bgp.Speaker.cap_respawn ~net ~bugs

let route_count t = Lazy.force t.image.Bgp.Speaker.cap_route_count
let impl t = t.image.Bgp.Speaker.cap_impl
let config t = t.image.Bgp.Speaker.cap_config

let pp ppf t =
  Format.fprintf ppf "checkpoint(node=%d impl=%s at=%a routes=%d)" t.node (impl t)
    Netsim.Time.pp t.taken_at (route_count t)
