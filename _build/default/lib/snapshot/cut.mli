(** Consistent global snapshots via the Chandy–Lamport marker
    algorithm, run over the live simulation's FIFO channels.

    On initiation the initiator checkpoints itself and floods markers;
    every node checkpoints on its first marker and records each
    incoming channel until that channel's marker arrives.  The result
    is a causally consistent cut including in-flight messages — the
    "consistent shadow snapshot of local node checkpoints" of the
    paper's Figure 2 (step 2). *)

type channel_record = {
  ch_from : int;
  ch_to : int;
  ch_messages : string list;  (** in arrival order *)
}

type snapshot = {
  snap_id : int;
  initiator : int;
  started_at : Netsim.Time.t;
  completed_at : Netsim.Time.t;
  checkpoints : (int * Checkpoint.t) list;  (** sorted by node *)
  channels : channel_record list;
  control_messages : int;  (** markers sent — the overhead metric *)
}

val in_flight_total : snapshot -> int

type t
(** The snapshot controller: owns the network's control handler and
    delivery tap.  Create exactly one per network. *)

val create : speakers:(int -> Bgp.Speaker.t) -> string Netsim.Network.t -> t

val initiate : t -> initiator:int -> on_complete:(snapshot -> unit) -> int
(** Starts the marker algorithm from [initiator]; returns the snapshot
    id.  [on_complete] fires (via the event engine) once every channel
    has been closed by its marker.  Multiple snapshots may be in flight
    concurrently. *)

val active : t -> int
(** Number of snapshots still collecting. *)

val completed : t -> snapshot list
