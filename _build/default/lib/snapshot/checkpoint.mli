(** Lightweight per-node checkpoints.

    A checkpoint is an immutable image of one speaker's routing state
    plus its configuration, taken through the implementation-agnostic
    {!Bgp.Speaker} interface.  Both shipped implementations build their
    state from persistent data structures, so [take] is O(1): it copies
    pointers, not RIBs. *)

type t = {
  node : int;
  taken_at : Netsim.Time.t;
  image : Bgp.Speaker.capture;
}

val take : at:Netsim.Time.t -> Bgp.Speaker.t -> t

val respawn :
  t -> net:string Netsim.Network.t -> bugs:Bgp.Router.bugs -> Bgp.Speaker.t
(** Recreate the speaker (same implementation, captured state) on an
    isolated network. *)

val route_count : t -> int
(** Loc-RIB + Adj-RIB-In entries — the "state size" metric used by the
    overhead experiments. *)

val impl : t -> string
val config : t -> Bgp.Config.t
val pp : Format.formatter -> t -> unit
