(** The narrow information-sharing interface.

    In a federated system the explorer cannot read remote nodes'
    state.  Remote nodes run property checks locally and share only a
    digest: property name, verdict, and an opaque commitment to the
    evidence (a hash), never the evidence itself.  The explorer
    aggregates digests into the system-wide verdict. *)

type digest = private {
  d_node : int;
  d_property : string;
  d_ok : bool;
  d_commitment : int;  (** hash of the local evidence; reveals nothing *)
}

val digest : node:int -> property:string -> ok:bool -> evidence:string -> digest

val leaks_nothing : digest -> string -> bool
(** [leaks_nothing d evidence] — the digest does not contain the
    evidence text (sanity check used by tests; trivially true by
    construction since the digest only stores a hash). *)

type aggregate = {
  total : int;
  violations : (int * string) list;  (** (node, property) pairs that failed *)
}

val aggregate : digest list -> aggregate
val all_ok : aggregate -> bool
val pp_digest : Format.formatter -> digest -> unit
