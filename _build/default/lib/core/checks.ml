type ground_truth = { owner_of : Bgp.Prefix.t -> int option }

let ground_truth_of_graph graph =
  let owned =
    List.map
      (fun id -> (Topology.Gao_rexford.prefix_of_node id, Topology.Gao_rexford.asn_of_node id))
      (Topology.Graph.node_ids graph)
  in
  let owner_of p =
    List.find_map
      (fun (owned_prefix, asn) ->
        if Bgp.Prefix.subsumes owned_prefix p then Some asn else None)
      owned
  in
  { owner_of }

type verdict = {
  v_node : int;
  v_property : string;
  v_ok : bool;
  v_evidence : string;
}

let ok node property = { v_node = node; v_property = property; v_ok = true; v_evidence = "" }

let bad node property evidence =
  { v_node = node; v_property = property; v_ok = false; v_evidence = evidence }

(* The AS that originated a route; locally-originated routes have an
   empty path and originate at this speaker. *)
let origin_asn (sp : Bgp.Speaker.t) (route : Bgp.Rib.route) =
  match Bgp.As_path.origin_as route.Bgp.Rib.attrs.Bgp.Attr.as_path with
  | Some a -> a
  | None -> (sp.Bgp.Speaker.sp_config ()).Bgp.Config.asn

let per_router_check property f (shadow : Snapshot.Store.shadow) =
  List.map
    (fun (id, sp) ->
      match f id sp with
      | [] -> ok id property
      | evidence -> bad id property (String.concat "; " evidence))
    shadow.Snapshot.Store.sh_speakers

let origin_authenticity gt =
  per_router_check "origin-authenticity" (fun _ sp ->
      Bgp.Prefix.Map.fold
        (fun prefix route acc ->
          match gt.owner_of prefix with
          | None -> acc
          | Some owner ->
              let origin = origin_asn sp route in
              if origin = owner then acc
              else
                Printf.sprintf "%s originated by AS%d, owner is AS%d"
                  (Bgp.Prefix.to_string prefix) origin owner
                :: acc)
        (Bgp.Speaker.loc_rib sp) [])

let no_martians =
  per_router_check "no-martians" (fun _ sp ->
      Bgp.Prefix.Map.fold
        (fun prefix _ acc ->
          if Bgp.Prefix.is_martian prefix then
            Printf.sprintf "martian %s selected" (Bgp.Prefix.to_string prefix) :: acc
          else acc)
        (Bgp.Speaker.loc_rib sp) [])

let no_own_as_in_path =
  per_router_check "no-own-as-in-path" (fun _ sp ->
      let own = (sp.Bgp.Speaker.sp_config ()).Bgp.Config.asn in
      Bgp.Prefix.Map.fold
        (fun prefix route acc ->
          if Bgp.As_path.contains own route.Bgp.Rib.attrs.Bgp.Attr.as_path then
            Printf.sprintf "%s selected with own AS%d in path %s"
              (Bgp.Prefix.to_string prefix) own
              (Bgp.As_path.to_string route.Bgp.Rib.attrs.Bgp.Attr.as_path)
            :: acc
          else acc)
        (Bgp.Speaker.loc_rib sp) [])

(* Reference selection: same candidate construction as the speaker's
   own decision pass, but with specification semantics (loop check on,
   MED compared per RFC). *)
let decision_matches_spec =
  per_router_check "decision-process-spec" (fun id sp ->
      let cfg = sp.Bgp.Speaker.sp_config () in
      let dcfg : Bgp.Decision.config =
        { always_compare_med = cfg.Bgp.Config.always_compare_med }
      in
      let rib = sp.Bgp.Speaker.sp_rib () in
      let local_route prefix =
        if List.exists (Bgp.Prefix.equal prefix) cfg.Bgp.Config.networks then
          Some
            { Bgp.Rib.attrs =
                Bgp.Attr.make ~origin:Bgp.Attr.Igp
                  ~next_hop:(Bgp.Router.addr_of_node id) ();
              source = Bgp.Rib.local_source }
        else None
      in
      let prefixes =
        List.sort_uniq Bgp.Prefix.compare
          (Bgp.Rib.loc_prefixes rib @ cfg.Bgp.Config.networks)
      in
      List.filter_map
        (fun prefix ->
          let candidates =
            Bgp.Rib.candidates prefix rib
            |> List.filter (Bgp.Decision.acceptable ~local_as:cfg.Bgp.Config.asn)
          in
          let candidates =
            match local_route prefix with
            | Some r -> r :: candidates
            | None -> candidates
          in
          let reference = Bgp.Decision.best dcfg candidates in
          let actual = Bgp.Rib.loc_get prefix rib in
          match (reference, actual) with
          | None, None -> None
          | Some a, Some b when a = b -> None
          | _ ->
              Some
                (Printf.sprintf "%s: selection disagrees with the decision-process spec"
                   (Bgp.Prefix.to_string prefix)))
        prefixes)

let convergence ?(budget = 200_000) ?(sample_every = 100) shadow =
  let eng = shadow.Snapshot.Store.sh_engine in
  let seen = Hashtbl.create 64 in
  let last = ref None in
  (* A revisit means the global state left a fingerprint and came back
     to it (A -> B -> A); consecutive identical samples are just an
     idle network, not oscillation. *)
  let sample () =
    let fp = Snapshot.Store.loc_rib_fingerprint shadow in
    let changed = !last <> Some fp in
    let known = Hashtbl.mem seen fp in
    Hashtbl.replace seen fp ();
    last := Some fp;
    changed && known
  in
  let rec go events revisited =
    if Netsim.Engine.pending eng = 0 then `Quiesced
    else if events >= budget then if revisited then `Oscillating else `Diverging
    else begin
      let revisited =
        if events mod sample_every = 0 then revisited || sample () else revisited
      in
      ignore (Netsim.Engine.step eng);
      go (events + 1) revisited
    end
  in
  let result = go 0 false in
  List.map
    (fun (id, _) ->
      match result with
      | `Quiesced -> ok id "convergence"
      | `Oscillating -> bad id "convergence" "routing oscillation (state revisited)"
      | `Diverging -> bad id "convergence" "no quiescence within event budget")
    shadow.Snapshot.Store.sh_speakers

type scope = Baseline | Per_input

type checker = {
  name : string;
  fault_class : Fault.fault_class;
  scope : scope;
  run : Snapshot.Store.shadow -> verdict list;
}

(* Origin authenticity is a *state* property: no import filter can
   reject a forged origin without a global registry, so running it
   against explorer-synthesized announcements would flag every node.
   It runs once per snapshot, against the unperturbed clone, where a
   violation means the hijack actually happened. *)
let standard_suite gt =
  [ { name = "origin-authenticity"; fault_class = Fault.Operator_mistake;
      scope = Baseline; run = origin_authenticity gt };
    { name = "no-martians"; fault_class = Fault.Operator_mistake;
      scope = Per_input; run = no_martians };
    { name = "no-own-as-in-path"; fault_class = Fault.Programming_error;
      scope = Per_input; run = no_own_as_in_path };
    { name = "decision-process-spec"; fault_class = Fault.Programming_error;
      scope = Per_input; run = decision_matches_spec } ]

let convergence_checker =
  { name = "convergence"; fault_class = Fault.Policy_conflict; scope = Per_input;
    run = (fun shadow -> convergence shadow) }
