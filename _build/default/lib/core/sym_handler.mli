(** The instrumented BGP UPDATE handler.

    Mirrors the router's message-processing pipeline over concolic
    values — wire validation, the seeded-bug code paths, the AS-path
    loop check, the import route map (via {!Sym_policy}), and the
    route-preference comparison against the node's current best route
    (the paper's symbolic "is this route locally most preferred"
    condition).  Running it under {!Concolic.Engine.explore} yields
    inputs that systematically cover these paths; {!concretize} turns
    each input into real wire bytes to subject a shadow clone to. *)

type view = {
  sh_node : int;
  sh_config : Bgp.Config.t;
  sh_peer : Bgp.Config.neighbor;  (** the session the input arrives on *)
  sh_bugs : Bgp.Router.bugs;
  sh_universe : Bgp.Community.t list;
  sh_loc_rib : Bgp.Rib.route Bgp.Prefix.Map.t;  (** current best routes *)
  sh_asn_lo : int;
  sh_asn_hi : int;
}

val view_of_router : Bgp.Router.t -> peer:Bgp.Ipv4.t -> view
(** @raise Invalid_argument if [peer] is not a configured neighbor. *)

val view_of_speaker : Bgp.Speaker.t -> peer:Bgp.Ipv4.t -> view
(** Implementation-agnostic variant (works for any {!Bgp.Speaker}). *)

type outcome =
  | Malformed  (** would be rejected by the codec with a NOTIFICATION *)
  | Withdrawal of { had_route : bool }
      (** the input withdraws the prefix; [had_route] = the node
          currently selects a route for it *)
  | Rejected_loop
  | Rejected_policy
  | Accepted of { preferred : bool }

val outcome_to_string : outcome -> string

val run : view -> Concolic.Ctx.t -> outcome
(** May raise [Bgp.Router.Crash] on the seeded crash-bug path — the
    concolic engine records it as a crashing input. *)

val concretize : view -> Concolic.Ctx.input -> string
(** Wire bytes for the UPDATE described by the input — including the
    deliberate malformations selected by the [malform] field. *)

val update_of_input : view -> Concolic.Ctx.input -> Bgp.Msg.update
(** The well-formed part of [concretize] as a typed message. *)

val seeds : view -> Concolic.Ctx.input list
(** Benign announcement plus a few structurally diverse starting
    points. *)

val fuzz_inputs : view -> Netsim.Rng.t -> int -> Concolic.Ctx.input list
(** Grammar-based fuzzing over the same field space: many valid
    inputs cheaply (paper insight (iii)). *)
