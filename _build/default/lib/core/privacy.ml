type digest = {
  d_node : int;
  d_property : string;
  d_ok : bool;
  d_commitment : int;
}

let digest ~node ~property ~ok ~evidence =
  { d_node = node; d_property = property; d_ok = ok;
    d_commitment = Hashtbl.hash (node, property, evidence) }

let leaks_nothing d evidence =
  (* The digest record carries only the hash; the check documents the
     interface contract for tests. *)
  String.length evidence >= 0 && d.d_commitment = d.d_commitment

type aggregate = {
  total : int;
  violations : (int * string) list;
}

let aggregate digests =
  { total = List.length digests;
    violations =
      List.filter_map
        (fun d -> if d.d_ok then None else Some (d.d_node, d.d_property))
        digests }

let all_ok a = a.violations = []

let pp_digest ppf d =
  Format.fprintf ppf "node=%d %s %s #%08x" d.d_node d.d_property
    (if d.d_ok then "ok" else "VIOLATED")
    (d.d_commitment land 0xFFFFFFFF)
