open Concolic

type view = {
  sh_node : int;
  sh_config : Bgp.Config.t;
  sh_peer : Bgp.Config.neighbor;
  sh_bugs : Bgp.Router.bugs;
  sh_universe : Bgp.Community.t list;
  sh_loc_rib : Bgp.Rib.route Bgp.Prefix.Map.t;
  sh_asn_lo : int;
  sh_asn_hi : int;
}

(* ASN bounds: everything the node can name (itself, neighbors, ASNs in
   policies) plus margin for "an AS nobody configured" — hijackers. *)
let asn_bounds (cfg : Bgp.Config.t) =
  let mentioned =
    cfg.Bgp.Config.asn
    :: List.map (fun (n : Bgp.Config.neighbor) -> n.Bgp.Config.remote_as)
         cfg.Bgp.Config.neighbors
  in
  let policy_asns =
    List.concat_map
      (fun (_, entries) ->
        List.concat_map
          (fun (e : Bgp.Policy.entry) ->
            List.filter_map
              (function
                | Bgp.Policy.Match_as_path (Bgp.Policy.Path_contains a)
                | Bgp.Policy.Match_as_path (Bgp.Policy.Path_originated_by a)
                | Bgp.Policy.Match_as_path (Bgp.Policy.Path_neighbor_is a) ->
                    Some a
                | Bgp.Policy.Match_as_path
                    (Bgp.Policy.Path_length_at_most _ | Bgp.Policy.Path_length_at_least _)
                | Bgp.Policy.Match_prefix _ | Bgp.Policy.Match_community _
                | Bgp.Policy.Match_origin _ | Bgp.Policy.Match_next_hop _ -> None)
              e.Bgp.Policy.matches)
          entries)
      cfg.Bgp.Config.route_maps
  in
  let all = mentioned @ policy_asns in
  let lo = List.fold_left min (List.hd all) (List.tl all) in
  let hi = List.fold_left max (List.hd all) (List.tl all) in
  (max 1 (lo - 2), min 0xFFFF (hi + 2))

let make_view ~node ~cfg ~bugs ~loc_rib ~peer =
  match Bgp.Config.find_neighbor cfg peer with
  | None -> invalid_arg "Sym_handler.view: unknown peer"
  | Some n ->
      let lo, hi = asn_bounds cfg in
      { sh_node = node;
        sh_config = cfg;
        sh_peer = n;
        sh_bugs = bugs;
        sh_universe = Sym_route.universe cfg bugs;
        sh_loc_rib = loc_rib;
        sh_asn_lo = lo;
        sh_asn_hi = hi }

let view_of_router router ~peer =
  make_view ~node:(Bgp.Router.node router) ~cfg:(Bgp.Router.config router)
    ~bugs:(Bgp.Router.bugs router) ~loc_rib:(Bgp.Router.loc_rib router) ~peer

let view_of_speaker (sp : Bgp.Speaker.t) ~peer =
  make_view ~node:sp.Bgp.Speaker.sp_node
    ~cfg:(sp.Bgp.Speaker.sp_config ())
    ~bugs:(sp.Bgp.Speaker.sp_bugs ())
    ~loc_rib:(Bgp.Speaker.loc_rib sp) ~peer

type outcome =
  | Malformed
  | Withdrawal of { had_route : bool }
  | Rejected_loop
  | Rejected_policy
  | Accepted of { preferred : bool }

let outcome_to_string = function
  | Malformed -> "malformed"
  | Withdrawal { had_route } ->
      if had_route then "withdrawal-of-known-route" else "withdrawal-of-unknown-route"
  | Rejected_loop -> "rejected-loop"
  | Rejected_policy -> "rejected-policy"
  | Accepted { preferred } ->
      if preferred then "accepted-preferred" else "accepted-not-preferred"

let concrete_prefix (sr : Sym_route.t) =
  Bgp.Prefix.make
    (Bgp.Ipv4.of_octets (Cval.to_int sr.Sym_route.sr_prefix_a)
       (Cval.to_int sr.Sym_route.sr_prefix_b)
       (Cval.to_int sr.Sym_route.sr_prefix_c)
       0)
    (Cval.to_int sr.Sym_route.sr_prefix_len)

(* The preference mirror: compare the (symbolic) imported route against
   the node's current best for the same prefix, recording one or two
   branches per decision step — the paper's symbolic route-selection
   condition. *)
let preferred_over_best view ctx (sr : Sym_route.t) =
  match Bgp.Prefix.Map.find_opt (concrete_prefix sr) view.sh_loc_rib with
  | None -> true (* no competitor: new route is best *)
  | Some best when Bgp.Rib.is_local best ->
      (* Local routes hold administrative weight; nothing from a peer
         displaces them. *)
      false
  | Some best ->
      let best_attrs = best.Bgp.Rib.attrs in
      let best_lp = Bgp.Attr.effective_local_pref best_attrs in
      let best_len = Bgp.As_path.length best_attrs.Bgp.Attr.as_path in
      let best_origin = Bgp.Attr.origin_code best_attrs.Bgp.Attr.origin in
      let best_med = Option.value best_attrs.Bgp.Attr.med ~default:0 in
      let lp = sr.Sym_route.sr_local_pref in
      if Ctx.branch ctx (Cval.gt lp (Cval.concrete best_lp)) then true
      else if Ctx.branch ctx (Cval.lt lp (Cval.concrete best_lp)) then false
      else if Ctx.branch ctx (Cval.lt sr.Sym_route.sr_path_len (Cval.concrete best_len))
      then true
      else if Ctx.branch ctx (Cval.gt sr.Sym_route.sr_path_len (Cval.concrete best_len))
      then false
      else if Ctx.branch ctx (Cval.lt sr.Sym_route.sr_origin (Cval.concrete best_origin))
      then true
      else if Ctx.branch ctx (Cval.gt sr.Sym_route.sr_origin (Cval.concrete best_origin))
      then false
      else begin
        (* MED: compared only against a best route from the same
           neighboring AS (unless always-compare-med). *)
        let same_as =
          match Bgp.As_path.neighbor_as best_attrs.Bgp.Attr.as_path with
          | Some nas ->
              Ctx.branch ctx (Cval.eq_const sr.Sym_route.sr_neighbor_as nas)
          | None -> false
        in
        if view.sh_config.Bgp.Config.always_compare_med || same_as then
          let med_wins =
            if view.sh_bugs.Bgp.Router.invert_med then
              Ctx.branch ctx (Cval.gt sr.Sym_route.sr_med (Cval.concrete best_med))
            else Ctx.branch ctx (Cval.lt sr.Sym_route.sr_med (Cval.concrete best_med))
          in
          med_wins
        else
          (* Deterministic concrete tie-break (router ids are not
             symbolic): keep the incumbent. *)
          false
      end

let run view ctx =
  let sr =
    Sym_route.read ctx ~asn_lo:view.sh_asn_lo ~asn_hi:view.sh_asn_hi
      ~universe_size:(List.length view.sh_universe)
  in
  (* 1. Withdrawals first: they carry no attributes, so none of the
     attribute-level validation below applies. *)
  if Ctx.branch ctx (Cval.eq_const sr.Sym_route.sr_withdraw 1) then
    Withdrawal
      { had_route = Bgp.Prefix.Map.mem (concrete_prefix sr) view.sh_loc_rib }
  (* 2. Wire-level validation (mirrors the codec). *)
  else if Ctx.branch ctx (Cval.ne sr.Sym_route.sr_malform (Cval.concrete 0)) then
    Malformed
  else if Ctx.branch ctx (Cval.ge sr.Sym_route.sr_origin (Cval.concrete 3)) then
    Malformed
  else begin
    (* 3. Seeded crash bug (community handler). *)
    (match view.sh_bugs.Bgp.Router.crash_community with
    | Some c -> (
        match Sym_route.community_index view.sh_universe c with
        | Some idx ->
            if Ctx.branch ctx (Cval.eq_const sr.Sym_route.sr_community idx) then
              raise
                (Bgp.Router.Crash
                   (Printf.sprintf "community handler crash on %s"
                      (Bgp.Community.to_string c)))
        | None -> ())
    | None -> ());
    (* 4. AS-path loop check (skipped by the seeded loop bug). *)
    if
      (not view.sh_bugs.Bgp.Router.skip_loop_check)
      && Ctx.branch ctx (Cval.eq_const sr.Sym_route.sr_contains_self 1)
    then Rejected_loop
    else begin
      (* 5. eBGP import: LOCAL_PREF from the wire is ignored. *)
      let ebgp = view.sh_peer.Bgp.Config.remote_as <> view.sh_config.Bgp.Config.asn in
      let sr =
        if ebgp then { sr with Sym_route.sr_local_pref = Cval.concrete 100 } else sr
      in
      (* 6. Import route map — the configuration interpreter. *)
      let policy = Bgp.Config.import_policy view.sh_config view.sh_peer in
      match
        Sym_policy.eval ctx ~own_asn:view.sh_config.Bgp.Config.asn
          ~universe:view.sh_universe policy sr
      with
      | Sym_policy.Denied -> Rejected_policy
      | Sym_policy.Accepted sr ->
          Accepted { preferred = preferred_over_best view ctx sr }
    end
  end

(* ------------------------------------------------------------------ *)
(* Concretization                                                      *)
(* ------------------------------------------------------------------ *)

let lookup_field view input name =
  let specs =
    Sym_route.field_specs ~asn_lo:view.sh_asn_lo ~asn_hi:view.sh_asn_hi
      ~universe_size:(List.length view.sh_universe)
  in
  let _, lo, hi, default =
    List.find (fun (n, _, _, _) -> String.equal n name) specs
  in
  match List.assoc_opt name input with
  | Some v -> max lo (min hi v)
  | None -> default

let update_of_input view input =
  let f = lookup_field view input in
  let own = view.sh_config.Bgp.Config.asn in
  let prefix =
    Bgp.Prefix.make
      (Bgp.Ipv4.of_octets (f "nlri_a") (f "nlri_b") (f "nlri_c") 0)
      (f "nlri_len")
  in
  if f "withdraw" = 1 then
    { Bgp.Msg.withdrawn = [ prefix ]; attrs = None; nlri = [] }
  else
  let path_len = f "path_len" in
  let origin_as = f "origin_as" in
  let neighbor_as = f "neighbor_as" in
  let contains_self = f "contains_self" = 1 in
  let path =
    if path_len <= 1 then [ origin_as ]
    else begin
      let middle_len = path_len - 2 in
      let middle =
        List.init middle_len (fun i ->
            if contains_self && i = 0 then own else origin_as)
      in
      (neighbor_as :: middle) @ [ origin_as ]
    end
  in
  let path = if contains_self && path_len <= 1 then [ own; origin_as ] else path in
  let origin_code = min 2 (f "origin") in
  let communities =
    let idx = f "community" in
    if idx = 0 then []
    else
      match List.nth_opt view.sh_universe (idx - 1) with
      | Some c -> [ c ]
      | None -> []
  in
  let lp = f "local_pref" in
  let attrs =
    Bgp.Attr.make
      ~origin:
        (match Bgp.Attr.origin_of_code origin_code with
        | Some o -> o
        | None -> Bgp.Attr.Incomplete)
      ~as_path:[ Bgp.As_path.Seq path ]
      ~med:(Some (f "med"))
      ~local_pref:(if lp = 100 then None else Some lp)
      ~communities
      ~next_hop:(Bgp.Router.addr_of_node (Bgp.Router.node_of_addr view.sh_peer.Bgp.Config.addr))
      ()
  in
  { Bgp.Msg.withdrawn = []; attrs = Some attrs; nlri = [ prefix ] }

(* Byte offsets into the encoded UPDATE: header(19) + withdrawn-len(2)
   + attrs-len(2); the ORIGIN attribute is encoded first as
   [flags type len value]. *)
let origin_len_offset = 19 + 2 + 2 + 2
let origin_value_offset = 19 + 2 + 2 + 3

let concretize view input =
  let u = update_of_input view input in
  let raw = Bgp.Wire.encode (Bgp.Msg.Update u) in
  if u.Bgp.Msg.attrs = None then raw
  else
  match lookup_field view input "malform" with
  | 1 ->
      (* Invalid ORIGIN value: decodes to update-error/invalid-origin. *)
      let b = Bytes.of_string raw in
      Bytes.set b origin_value_offset (Char.chr 0xEE);
      Bytes.to_string b
  | 2 ->
      (* Corrupt ORIGIN attribute length: attribute-length error. *)
      let b = Bytes.of_string raw in
      Bytes.set b origin_len_offset (Char.chr 9);
      Bytes.to_string b
  | _ ->
      if lookup_field view input "origin" >= 3 then begin
        (* The mirror treats origin >= 3 as malformed; emit bytes that
           actually carry the invalid ORIGIN code. *)
        let b = Bytes.of_string raw in
        Bytes.set b origin_value_offset (Char.chr 3);
        Bytes.to_string b
      end
      else raw

let seeds view =
  let peer_as = view.sh_peer.Bgp.Config.remote_as in
  [ (* benign: neighbor originates its own route *)
    [ ("origin_as", peer_as); ("neighbor_as", peer_as) ];
    (* longer path through the neighbor *)
    [ ("origin_as", view.sh_asn_hi); ("neighbor_as", peer_as); ("path_len", 3) ];
    (* carrying a community, if any exist *)
    (match view.sh_universe with
    | _ :: _ -> [ ("origin_as", peer_as); ("neighbor_as", peer_as); ("community", 1) ]
    | [] -> [ ("origin_as", peer_as); ("neighbor_as", peer_as) ]);
    (* a path that loops through us (valid on the wire; the loop check
       must reject it) *)
    [ ("origin_as", peer_as); ("neighbor_as", peer_as); ("path_len", 3);
      ("contains_self", 1) ] ]

(* One derivation per call; each field is an independent production.
   The weights keep most samples wire-valid while still visiting the
   martian and bogus-netmask corners. *)
let fuzz_inputs view rng n =
  let u = List.length view.sh_universe in
  let pick g = Grammar.run g rng in
  let derive () =
    [ ("origin_as", pick (Grammar.range view.sh_asn_lo view.sh_asn_hi));
      ("neighbor_as", view.sh_peer.Bgp.Config.remote_as);
      ("path_len", pick (Grammar.range 1 4));
      ("contains_self", if pick (Grammar.chance 0.15) then 1 else 0);
      ("withdraw", if pick (Grammar.chance 0.1) then 1 else 0);
      ("community", if u = 0 then 0 else pick (Grammar.range 0 u));
      ("nlri_a", pick (Grammar.one_of [ 192; 192; 192; 192; 10; 127; 0; 240 ]));
      ("nlri_b", pick (Grammar.range 0 255));
      ("nlri_len",
       pick (Grammar.weighted
               [ (6, Grammar.pure 24); (2, Grammar.pure 16); (1, Grammar.pure 8);
                 (1, Grammar.pure 30) ]));
      ("origin", pick (Grammar.range 0 2));
      ("med", pick (Grammar.range 0 300)) ]
  in
  List.init n (fun _ -> derive ())
