(** Fault injection: the three fault classes of the paper's evaluation,
    reproduced as mutations of a deployed topology. *)

type scenario =
  | Prefix_hijack of { at : int; victim : int }
      (** operator mistake: [at]'s operator fat-fingers a network
          statement and originates [victim]'s prefix *)
  | Bogus_netmask of { at : int }
      (** operator mistake: [at] announces a martian (127.0.0.0/8) *)
  | Policy_dispute of { cycle : int list; victim : int }
      (** policy conflict: each AS in [cycle] (pairwise peers, e.g. the
          tier-1 clique) prefers the route to [victim]'s prefix via the
          next cycle member over its own customer route — a BAD-GADGET
          dispute wheel *)
  | Loop_check_bug of { at : int }  (** programming error *)
  | Inverted_med_bug of { at : int }  (** programming error *)
  | Crash_bug of { at : int; community : Bgp.Community.t }
      (** programming error: malformed-community handler crash *)

val describe : scenario -> string
val fault_class : scenario -> Fault.fault_class
val target_node : scenario -> int

val apply : Topology.Build.t -> scenario -> unit
(** Mutates configurations / bug flags on the live deployment.
    @raise Invalid_argument for a [Policy_dispute] whose cycle members
    are not pairwise peers of each other. *)
