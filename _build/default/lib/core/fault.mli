(** Fault reports — what DiCE detects.

    The three classes are the paper's: operator mistakes
    (misconfiguration), policy conflicts across domains, and
    programming errors in the implementation. *)

type fault_class = Operator_mistake | Policy_conflict | Programming_error

val class_to_string : fault_class -> string

type t = {
  f_class : fault_class;
  f_property : string;  (** property whose violation was detected *)
  f_node : int;  (** node at which the violation manifests *)
  f_detail : string;
  f_input : Concolic.Ctx.input option;  (** triggering explored input *)
  f_detected_at : Netsim.Time.t;  (** simulated time of detection *)
}

val make :
  ?input:Concolic.Ctx.input ->
  at:Netsim.Time.t ->
  node:int ->
  property:string ->
  fault_class ->
  string ->
  t

val same_root : t -> t -> bool
(** Same class, property and node — used to deduplicate reports across
    explored inputs. *)

val dedupe : t list -> t list
val pp : Format.formatter -> t -> unit
