(** Symbolic route descriptor.

    The abstraction of an incoming UPDATE that the instrumented
    handlers compute on: each field is a concolic value.  Multi-valued
    attributes are abstracted — the AS path is represented by its
    length, end points and a contains-own-AS flag; the community list
    by a selector into a per-node universe of interesting communities.
    This mirrors what the paper marks symbolic in BIRD: NLRI netmask
    lengths and the (type, length, value) triples of path attributes. *)

type t = {
  sr_withdraw : Concolic.Cval.t;  (** 0 = announcement, 1 = withdrawal *)
  sr_prefix_a : Concolic.Cval.t;  (** first octet of the NLRI *)
  sr_prefix_b : Concolic.Cval.t;  (** second octet *)
  sr_prefix_c : Concolic.Cval.t;  (** third octet *)
  sr_prefix_len : Concolic.Cval.t;  (** netmask length, 0..32 *)
  sr_origin : Concolic.Cval.t;  (** ORIGIN code; 3 encodes "malformed" *)
  sr_path_len : Concolic.Cval.t;
  sr_origin_as : Concolic.Cval.t;
  sr_neighbor_as : Concolic.Cval.t;
  sr_contains_self : Concolic.Cval.t;  (** 0/1: AS path contains our AS *)
  sr_med : Concolic.Cval.t;
  sr_local_pref : Concolic.Cval.t;  (** effective (default applied) *)
  sr_community : Concolic.Cval.t;  (** index into the universe; 0 = none *)
  sr_malform : Concolic.Cval.t;  (** 0 ok / 1 bad origin byte / 2 bad attr length *)
}

val field_specs : asn_lo:int -> asn_hi:int -> universe_size:int -> (string * int * int * int) list
(** (name, lo, hi, default) for every symbolic input field; defaults
    describe a benign, well-formed announcement. *)

val read : Concolic.Ctx.t -> asn_lo:int -> asn_hi:int -> universe_size:int -> t
(** Declare all fields in [ctx] and assemble the descriptor. *)

(** The community universe for a node: index 0 means "no community". *)
val universe : Bgp.Config.t -> Bgp.Router.bugs -> Bgp.Community.t list

val community_index : Bgp.Community.t list -> Bgp.Community.t -> int option
(** 1-based index into the universe. *)
