(** Concrete property checkers for BGP, run against a shadow clone
    after an explored input has been applied.

    Each checker returns one local verdict per node; the explorer keeps
    full evidence only for its own node and converts remote verdicts
    into {!Privacy} digests. *)

type ground_truth = {
  owner_of : Bgp.Prefix.t -> int option;
      (** ASN authorized to originate the (covering) prefix *)
}

val ground_truth_of_graph : Topology.Graph.t -> ground_truth
(** Registry semantics: node [i]'s /24 (and anything it subsumes) may
    only be originated by AS [asn_of_node i]. *)

type verdict = {
  v_node : int;
  v_property : string;
  v_ok : bool;
  v_evidence : string;  (** never shared across domains directly *)
}

val origin_authenticity : ground_truth -> Snapshot.Store.shadow -> verdict list
(** Detects prefix hijacks: a selected route whose origin AS is not the
    prefix owner (operator-mistake class). *)

val no_martians : Snapshot.Store.shadow -> verdict list
(** No selected route for martian address space or bogus netmask
    (operator-mistake class). *)

val no_own_as_in_path : Snapshot.Store.shadow -> verdict list
(** AS-path loop detection must hold (programming-error class:
    catches the loop-check bypass bug). *)

val decision_matches_spec : Snapshot.Store.shadow -> verdict list
(** The selected route must equal a reference run of the decision
    process over the same candidates (programming-error class: catches
    the inverted-MED bug). *)

val convergence : ?budget:int -> ?sample_every:int -> Snapshot.Store.shadow -> verdict list
(** Runs the shadow.  If it fails to quiesce within [budget] events and
    the global RIB fingerprint revisits an earlier value, the system is
    oscillating (policy-conflict class); non-quiescence without a
    revisit is reported as divergence. *)

type scope =
  | Baseline  (** state property: checked once per snapshot, pre-input *)
  | Per_input  (** behavior property: checked after every explored input *)

type checker = {
  name : string;
  fault_class : Fault.fault_class;
  scope : scope;
  run : Snapshot.Store.shadow -> verdict list;
}

val standard_suite : ground_truth -> checker list
(** Everything above except [convergence] (which the explorer invokes
    separately because it advances shadow time itself).
    [origin_authenticity] and other unfilterable state properties carry
    [Baseline] scope. *)

val convergence_checker : checker
