type t = {
  sr_withdraw : Concolic.Cval.t;  (* 0 announce / 1 withdraw *)
  sr_prefix_a : Concolic.Cval.t;
  sr_prefix_b : Concolic.Cval.t;
  sr_prefix_c : Concolic.Cval.t;
  sr_prefix_len : Concolic.Cval.t;
  sr_origin : Concolic.Cval.t;
  sr_path_len : Concolic.Cval.t;
  sr_origin_as : Concolic.Cval.t;
  sr_neighbor_as : Concolic.Cval.t;
  sr_contains_self : Concolic.Cval.t;
  sr_med : Concolic.Cval.t;
  sr_local_pref : Concolic.Cval.t;
  sr_community : Concolic.Cval.t;
  sr_malform : Concolic.Cval.t;
}

let field_specs ~asn_lo ~asn_hi ~universe_size =
  [ ("withdraw", 0, 1, 0);
    ("nlri_a", 0, 255, 192);
    ("nlri_b", 0, 255, 0);
    ("nlri_c", 0, 255, 0);
    ("nlri_len", 0, 32, 24);
    ("origin", 0, 3, 0);
    ("path_len", 1, 6, 1);
    ("origin_as", asn_lo, asn_hi, asn_lo);
    ("neighbor_as", asn_lo, asn_hi, asn_lo);
    ("contains_self", 0, 1, 0);
    ("med", 0, 65535, 0);
    ("local_pref", 0, 1000, 100);
    ("community", 0, universe_size, 0);
    ("malform", 0, 2, 0) ]

let read ctx ~asn_lo ~asn_hi ~universe_size =
  let get name =
    let _, lo, hi, default =
      List.find
        (fun (n, _, _, _) -> String.equal n name)
        (field_specs ~asn_lo ~asn_hi ~universe_size)
    in
    Concolic.Ctx.field ctx name ~lo ~hi ~default
  in
  { sr_withdraw = get "withdraw";
    sr_prefix_a = get "nlri_a";
    sr_prefix_b = get "nlri_b";
    sr_prefix_c = get "nlri_c";
    sr_prefix_len = get "nlri_len";
    sr_origin = get "origin";
    sr_path_len = get "path_len";
    sr_origin_as = get "origin_as";
    sr_neighbor_as = get "neighbor_as";
    sr_contains_self = get "contains_self";
    sr_med = get "med";
    sr_local_pref = get "local_pref";
    sr_community = get "community";
    sr_malform = get "malform" }

let universe (cfg : Bgp.Config.t) (bugs : Bgp.Router.bugs) =
  let from_policies =
    List.concat_map
      (fun (_, entries) ->
        List.concat_map
          (fun (e : Bgp.Policy.entry) ->
            List.filter_map
              (function
                | Bgp.Policy.Match_community c -> Some c
                | Bgp.Policy.Match_prefix _ | Bgp.Policy.Match_as_path _
                | Bgp.Policy.Match_origin _ | Bgp.Policy.Match_next_hop _ -> None)
              e.Bgp.Policy.matches
            @ List.filter_map
                (function
                  | Bgp.Policy.Add_community c | Bgp.Policy.Del_community c -> Some c
                  | Bgp.Policy.Set_local_pref _ | Bgp.Policy.Set_med _
                  | Bgp.Policy.Set_origin _ | Bgp.Policy.Prepend_as _
                  | Bgp.Policy.Set_next_hop _ -> None)
                e.Bgp.Policy.sets)
          entries)
      cfg.Bgp.Config.route_maps
  in
  let crash = match bugs.Bgp.Router.crash_community with Some c -> [ c ] | None -> [] in
  List.sort_uniq Bgp.Community.compare
    (from_policies @ crash @ [ Bgp.Community.no_export; Bgp.Community.no_advertise ])

let community_index universe c =
  let rec go i = function
    | [] -> None
    | x :: rest -> if Bgp.Community.equal x c then Some i else go (i + 1) rest
  in
  go 1 universe
