(** Per-node exploration: the core DiCE loop of Figure 2.

    1. trigger a consistent snapshot from the explorer node;
    2. derive inputs by concolic execution of the node's instrumented
       handler (plus grammar-based fuzzing);
    3. subject an isolated clone of the snapshot to each input and
       observe system-wide consequences through the property checkers;
    4. aggregate remote verdicts only as privacy-preserving digests. *)

type params = {
  limits : Concolic.Engine.limits;
  fuzz_extra : int;  (** grammar-fuzzed inputs on top of concolic ones *)
  peers_per_node : int;  (** explore the first k sessions of the node *)
  shadow_budget : int;  (** event budget per shadow run *)
  check_convergence : bool;
}

val default_params : params

type exploration = {
  x_node : int;
  x_snapshot : Snapshot.Cut.snapshot;
  x_faults : Fault.t list;  (** deduplicated *)
  x_digests : Privacy.digest list;  (** remote check results *)
  x_inputs : int;  (** concolic executions of the instrumented handler *)
  x_shadow_runs : int;  (** clones subjected to inputs *)
  x_distinct_paths : int;
  x_crashes : int;
  x_snapshot_span : Netsim.Time.span;  (** sim time to collect the cut *)
  x_wall_seconds : float;  (** host time spent exploring *)
}

val take_snapshot :
  build:Topology.Build.t -> cut:Snapshot.Cut.t -> node:int -> Snapshot.Cut.snapshot
(** Initiate from [node] and drive the live engine until the cut
    completes. *)

val explore_node :
  ?params:params ->
  build:Topology.Build.t ->
  cut:Snapshot.Cut.t ->
  gt:Checks.ground_truth ->
  node:int ->
  unit ->
  exploration

val pp_exploration : Format.formatter -> exploration -> unit
