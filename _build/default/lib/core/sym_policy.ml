open Concolic

type result = Accepted of Sym_route.t | Denied

let cval_of_bool b = Cval.concrete (if b then 1 else 0)

let prefix_rule_matches (rule : Bgp.Policy.prefix_rule) (sr : Sym_route.t) =
  let base = Bgp.Prefix.len rule.Bgp.Policy.rule_prefix in
  let lo = Option.value rule.Bgp.Policy.ge ~default:base in
  let hi =
    match (rule.Bgp.Policy.le, rule.Bgp.Policy.ge) with
    | Some le, _ -> le
    | None, Some _ -> 32
    | None, None -> base
  in
  let a, b, c, _ = Bgp.Ipv4.to_octets (Bgp.Prefix.addr rule.Bgp.Policy.rule_prefix) in
  (* Compare the address octets covered by the rule's own length.  An
     octet covered partially (e.g. a /4 rule) contributes a masked
     comparison on its high bits. *)
  let octet_ok k rule_octet sym_octet =
    let bits = max 0 (min 8 (base - ((k - 1) * 8))) in
    if bits = 0 then cval_of_bool true
    else if bits = 8 then Cval.eq_const sym_octet rule_octet
    else
      let mask = 0xFF land (0xFF lsl (8 - bits)) in
      Cval.eq
        (Cval.band sym_octet (Cval.concrete mask))
        (Cval.concrete (rule_octet land mask))
  in
  List.fold_left Cval.conj
    (Cval.in_range sr.Sym_route.sr_prefix_len ~lo ~hi)
    [ octet_ok 1 a sr.Sym_route.sr_prefix_a;
      octet_ok 2 b sr.Sym_route.sr_prefix_b;
      octet_ok 3 c sr.Sym_route.sr_prefix_c ]

let as_path_test ~own_asn (test : Bgp.Policy.as_path_test) (sr : Sym_route.t) =
  match test with
  | Bgp.Policy.Path_contains asn ->
      if asn = own_asn then Cval.eq_const sr.Sym_route.sr_contains_self 1
      else
        Cval.disj
          (Cval.eq_const sr.Sym_route.sr_origin_as asn)
          (Cval.eq_const sr.Sym_route.sr_neighbor_as asn)
  | Bgp.Policy.Path_originated_by asn -> Cval.eq_const sr.Sym_route.sr_origin_as asn
  | Bgp.Policy.Path_neighbor_is asn -> Cval.eq_const sr.Sym_route.sr_neighbor_as asn
  | Bgp.Policy.Path_length_at_most n ->
      Cval.le sr.Sym_route.sr_path_len (Cval.concrete n)
  | Bgp.Policy.Path_length_at_least n ->
      Cval.ge sr.Sym_route.sr_path_len (Cval.concrete n)

let match_clause _ctx ~own_asn ~universe clause (sr : Sym_route.t) =
  match clause with
  | Bgp.Policy.Match_prefix rules ->
      List.fold_left
        (fun acc rule -> Cval.disj acc (prefix_rule_matches rule sr))
        (cval_of_bool false) rules
  | Bgp.Policy.Match_as_path test -> as_path_test ~own_asn test sr
  | Bgp.Policy.Match_community c -> (
      match Sym_route.community_index universe c with
      | Some idx -> Cval.eq_const sr.Sym_route.sr_community idx
      | None -> cval_of_bool false)
  | Bgp.Policy.Match_origin o ->
      Cval.eq_const sr.Sym_route.sr_origin (Bgp.Attr.origin_code o)
  | Bgp.Policy.Match_next_hop _ ->
      (* Next hops are rewritten at every eBGP hop; not modelled
         symbolically. *)
      cval_of_bool false

let apply_set ctx ~universe (set : Bgp.Policy.set_clause) (sr : Sym_route.t) =
  match set with
  | Bgp.Policy.Set_local_pref v ->
      { sr with Sym_route.sr_local_pref = Cval.concrete v }
  | Bgp.Policy.Set_med None -> { sr with Sym_route.sr_med = Cval.concrete 0 }
  | Bgp.Policy.Set_med (Some v) -> { sr with Sym_route.sr_med = Cval.concrete v }
  | Bgp.Policy.Set_origin o ->
      { sr with Sym_route.sr_origin = Cval.concrete (Bgp.Attr.origin_code o) }
  | Bgp.Policy.Add_community c -> (
      (* Single-slot community abstraction: adding replaces. *)
      match Sym_route.community_index universe c with
      | Some idx -> { sr with Sym_route.sr_community = Cval.concrete idx }
      | None -> sr)
  | Bgp.Policy.Del_community c -> (
      match Sym_route.community_index universe c with
      | Some idx ->
          (* Branch so the engine can also explore the
             slot-holds-something-else side. *)
          if Ctx.branch ctx (Cval.eq_const sr.Sym_route.sr_community idx) then
            { sr with Sym_route.sr_community = Cval.concrete 0 }
          else sr
      | None -> sr)
  | Bgp.Policy.Prepend_as (_, n) ->
      { sr with
        Sym_route.sr_path_len = Cval.add sr.Sym_route.sr_path_len (Cval.concrete n) }
  | Bgp.Policy.Set_next_hop _ -> sr

let eval ctx ~own_asn ~universe policy sr =
  let rec go = function
    | [] -> Denied
    | (entry : Bgp.Policy.entry) :: rest ->
        let matches =
          List.fold_left
            (fun acc clause ->
              Cval.conj acc (match_clause ctx ~own_asn ~universe clause sr))
            (cval_of_bool true) entry.Bgp.Policy.matches
        in
        if Ctx.branch ctx matches then
          match entry.Bgp.Policy.action with
          | Bgp.Policy.Deny -> Denied
          | Bgp.Policy.Permit ->
              Accepted
                (List.fold_left
                   (fun sr set -> apply_set ctx ~universe set sr)
                   sr entry.Bgp.Policy.sets)
        else go rest
  in
  go (Bgp.Policy.normalize policy)
