type params = {
  limits : Concolic.Engine.limits;
  fuzz_extra : int;
  peers_per_node : int;
  shadow_budget : int;
  check_convergence : bool;
}

let default_params =
  { limits =
      { Concolic.Engine.max_inputs = 48; max_branches = 48; solver_nodes = 20_000 };
    fuzz_extra = 12;
    peers_per_node = 1;
    shadow_budget = 30_000;
    check_convergence = true }

type exploration = {
  x_node : int;
  x_snapshot : Snapshot.Cut.snapshot;
  x_faults : Fault.t list;
  x_digests : Privacy.digest list;
  x_inputs : int;
  x_shadow_runs : int;
  x_distinct_paths : int;
  x_crashes : int;
  x_snapshot_span : Netsim.Time.span;
  x_wall_seconds : float;
}

let take_snapshot ~build ~cut ~node =
  let eng = build.Topology.Build.engine in
  let result = ref None in
  let _id =
    Snapshot.Cut.initiate cut ~initiator:node ~on_complete:(fun s -> result := Some s)
  in
  (* Drive the live system until the markers have flooded the graph. *)
  let horizon = Netsim.Time.span_sec 120. in
  let deadline = Netsim.Time.add (Netsim.Engine.now eng) horizon in
  let rec wait () =
    match !result with
    | Some s -> s
    | None ->
        if Netsim.Time.(deadline <= Netsim.Engine.now eng) then
          failwith "Explorer.take_snapshot: cut did not complete within horizon"
        else begin
          ignore (Netsim.Engine.step eng);
          wait ()
        end
  in
  wait ()

(* Live bug flags per node, so clones run the same (buggy) code. *)
let bugs_of_build build id =
  match List.assoc_opt id build.Topology.Build.speakers with
  | Some sp -> sp.Bgp.Speaker.sp_bugs ()
  | None -> Bgp.Router.no_bugs

let verdicts_to_results ~self ~now ?input ~checker_class verdicts =
  List.fold_left
    (fun (faults, digests) (v : Checks.verdict) ->
      if v.Checks.v_node = self then
        if v.Checks.v_ok then (faults, digests)
        else
          ( Fault.make ?input ~at:now ~node:v.Checks.v_node
              ~property:v.Checks.v_property checker_class v.Checks.v_evidence
            :: faults,
            digests )
      else
        let d =
          Privacy.digest ~node:v.Checks.v_node ~property:v.Checks.v_property
            ~ok:v.Checks.v_ok ~evidence:v.Checks.v_evidence
        in
        let faults =
          if v.Checks.v_ok then faults
          else
            (* Only the digest crossed the domain boundary: the report
               carries no remote evidence. *)
            Fault.make ?input ~at:now ~node:v.Checks.v_node
              ~property:v.Checks.v_property checker_class
              "remote check digest reported a violation"
            :: faults
        in
        (faults, d :: digests))
    ([], []) verdicts

let explore_peer ~params ~build ~gt ~snapshot ~node ~peer_addr =
  let t0 = Unix.gettimeofday () in
  let now = Netsim.Engine.now build.Topology.Build.engine in
  (* Probe clone: gives the instrumented handler a consistent view. *)
  let probe = Snapshot.Store.spawn ~bugs_of:(bugs_of_build build) snapshot in
  let probe_speaker = Snapshot.Store.speaker probe node in
  let view = Sym_handler.view_of_speaker probe_speaker ~peer:peer_addr in
  (* Step 2: derive inputs by concolic execution. *)
  let result =
    Concolic.Engine.explore ~limits:params.limits ~seeds:(Sym_handler.seeds view)
      (Sym_handler.run view)
  in
  (* Crashes in the instrumented mirror are programming-error faults. *)
  let crash_faults =
    List.filter_map
      (fun (r : _ Concolic.Engine.run) ->
        match r.Concolic.Engine.run_outcome with
        | Concolic.Engine.Raised (Bgp.Router.Crash detail) ->
            Some
              (Fault.make ~input:r.Concolic.Engine.run_input ~at:now ~node
                 ~property:"handler-crash" Fault.Programming_error detail)
        | Concolic.Engine.Raised e ->
            Some
              (Fault.make ~input:r.Concolic.Engine.run_input ~at:now ~node
                 ~property:"handler-exception" Fault.Programming_error
                 (Printexc.to_string e))
        | Concolic.Engine.Value _ -> None)
      result.Concolic.Engine.runs
  in
  (* Step 3: subject clones to each derived input. *)
  let rng = Netsim.Rng.create (0xF0 + node) in
  let inputs =
    List.map (fun (r : _ Concolic.Engine.run) -> r.Concolic.Engine.run_input)
      result.Concolic.Engine.runs
    @ Sym_handler.fuzz_inputs view rng params.fuzz_extra
  in
  let suite = Checks.standard_suite gt in
  let baseline, per_input =
    List.partition (fun (c : Checks.checker) -> c.Checks.scope = Checks.Baseline) suite
  in
  let shadow_runs = ref 0 in
  let all_faults = ref crash_faults in
  let all_digests = ref [] in
  (* Baseline (state) properties: checked once against the unperturbed
     clone of the snapshot, after it quiesces. *)
  let pristine = Snapshot.Store.spawn ~bugs_of:(bugs_of_build build) snapshot in
  ignore (Snapshot.Store.run_to_quiescence ~max_events:params.shadow_budget pristine);
  List.iter
    (fun (c : Checks.checker) ->
      List.iter
        (fun v ->
          let faults, digests =
            verdicts_to_results ~self:node ~now ~checker_class:c.Checks.fault_class
              [ v ]
          in
          all_faults := faults @ !all_faults;
          all_digests := digests @ !all_digests)
        (c.Checks.run pristine))
    baseline;
  List.iter
    (fun input ->
      let raw = Sym_handler.concretize view input in
      let shadow = Snapshot.Store.spawn ~bugs_of:(bugs_of_build build) snapshot in
      incr shadow_runs;
      let target = Snapshot.Store.speaker shadow node in
      (match target.Bgp.Speaker.sp_process_raw ~from_node:(Bgp.Router.node_of_addr peer_addr) raw with
      | () -> ()
      | exception Bgp.Router.Crash detail ->
          all_faults :=
            Fault.make ~input ~at:now ~node ~property:"handler-crash"
              Fault.Programming_error detail
            :: !all_faults);
      (* Observe system-wide consequences. *)
      let conv_verdicts =
        if params.check_convergence then
          Checks.convergence ~budget:params.shadow_budget shadow
        else begin
          ignore (Snapshot.Store.run_to_quiescence ~max_events:params.shadow_budget shadow);
          []
        end
      in
      let verdicts =
        List.concat_map
          (fun (c : Checks.checker) ->
            List.map (fun v -> (c.Checks.fault_class, v)) (c.Checks.run shadow))
          per_input
        @ List.map (fun v -> (Fault.Policy_conflict, v)) conv_verdicts
      in
      List.iter
        (fun (cls, v) ->
          let faults, digests =
            verdicts_to_results ~self:node ~now ~input ~checker_class:cls [ v ]
          in
          all_faults := faults @ !all_faults;
          all_digests := digests @ !all_digests)
        verdicts)
    inputs;
  ( Fault.dedupe (List.rev !all_faults),
    List.rev !all_digests,
    result,
    !shadow_runs,
    Unix.gettimeofday () -. t0 )

let explore_node ?(params = default_params) ~build ~cut ~gt ~node () =
  let t_start = Netsim.Engine.now build.Topology.Build.engine in
  (* Step 1: consistent snapshot. *)
  let snapshot = take_snapshot ~build ~cut ~node in
  let span =
    Netsim.Time.diff snapshot.Snapshot.Cut.completed_at snapshot.Snapshot.Cut.started_at
  in
  ignore t_start;
  let cfg = (Topology.Build.speaker build node).Bgp.Speaker.sp_config () in
  let peers =
    List.filteri (fun i _ -> i < params.peers_per_node) cfg.Bgp.Config.neighbors
  in
  let merged =
    List.map
      (fun (n : Bgp.Config.neighbor) ->
        explore_peer ~params ~build ~gt ~snapshot ~node ~peer_addr:n.Bgp.Config.addr)
      peers
  in
  let faults = List.concat_map (fun (f, _, _, _, _) -> f) merged in
  let digests = List.concat_map (fun (_, d, _, _, _) -> d) merged in
  let inputs =
    List.fold_left (fun acc (_, _, r, _, _) -> acc + r.Concolic.Engine.inputs_executed) 0 merged
  in
  let paths =
    List.fold_left (fun acc (_, _, r, _, _) -> acc + r.Concolic.Engine.distinct_paths) 0 merged
  in
  let crashes =
    List.fold_left
      (fun acc (_, _, r, _, _) -> acc + List.length r.Concolic.Engine.crashes)
      0 merged
  in
  let shadows = List.fold_left (fun acc (_, _, _, s, _) -> acc + s) 0 merged in
  let wall = List.fold_left (fun acc (_, _, _, _, w) -> acc +. w) 0. merged in
  { x_node = node;
    x_snapshot = snapshot;
    x_faults = Fault.dedupe faults;
    x_digests = digests;
    x_inputs = inputs;
    x_shadow_runs = shadows;
    x_distinct_paths = paths;
    x_crashes = crashes;
    x_snapshot_span = span;
    x_wall_seconds = wall }

let pp_exploration ppf x =
  Format.fprintf ppf
    "@[<v>node %d: %d inputs, %d paths, %d shadow runs, %d crashes, snapshot %dus, %.2fs wall@ "
    x.x_node x.x_inputs x.x_distinct_paths x.x_shadow_runs x.x_crashes
    x.x_snapshot_span x.x_wall_seconds;
  List.iter (fun f -> Format.fprintf ppf "  %a@ " Fault.pp f) x.x_faults;
  Format.fprintf ppf "@]"
