lib/core/inject.mli: Bgp Fault Topology
