lib/core/checks.mli: Bgp Fault Snapshot Topology
