lib/core/fault.ml: Concolic Format List Netsim String
