lib/core/orchestrator.mli: Checks Explorer Fault Format Netsim Topology
