lib/core/sym_policy.mli: Bgp Concolic Sym_route
