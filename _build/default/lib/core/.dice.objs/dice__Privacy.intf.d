lib/core/privacy.mli: Format
