lib/core/sym_policy.ml: Bgp Concolic Ctx Cval List Option Sym_route
