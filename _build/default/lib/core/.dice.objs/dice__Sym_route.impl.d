lib/core/sym_route.ml: Bgp Concolic List String
