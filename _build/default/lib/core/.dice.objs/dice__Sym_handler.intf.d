lib/core/sym_handler.mli: Bgp Concolic Netsim
