lib/core/explorer.ml: Bgp Checks Concolic Fault Format List Netsim Printexc Privacy Snapshot Sym_handler Topology Unix
