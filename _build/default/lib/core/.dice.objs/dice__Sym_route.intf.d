lib/core/sym_route.mli: Bgp Concolic
