lib/core/inject.ml: Bgp Fault List Printf String Topology
