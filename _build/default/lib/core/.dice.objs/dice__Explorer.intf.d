lib/core/explorer.mli: Checks Concolic Fault Format Netsim Privacy Snapshot Topology
