lib/core/privacy.ml: Format Hashtbl List String
