lib/core/fault.mli: Concolic Format Netsim
