lib/core/checks.ml: Bgp Fault Hashtbl List Netsim Printf Snapshot String Topology
