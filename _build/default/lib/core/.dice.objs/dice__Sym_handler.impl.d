lib/core/sym_handler.ml: Bgp Bytes Char Concolic Ctx Cval Grammar List Option Printf String Sym_policy Sym_route
