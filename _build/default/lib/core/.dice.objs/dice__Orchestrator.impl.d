lib/core/orchestrator.ml: Explorer Fault Format List Netsim Option Snapshot Topology
