(** Instrumented evaluation of route maps over symbolic routes.

    This is the "configuration interpreter" half of the paper's
    instrumentation: evaluating the node's actual [Policy.t] over a
    symbolic route records one branch per match clause, so the recorded
    constraints — and hence the inputs the solver derives — reflect the
    configuration currently in force, not just the code. *)

type result =
  | Accepted of Sym_route.t  (** after applying the entry's set clauses *)
  | Denied

val eval :
  Concolic.Ctx.t ->
  own_asn:int ->
  universe:Bgp.Community.t list ->
  Bgp.Policy.t ->
  Sym_route.t ->
  result

val match_clause :
  Concolic.Ctx.t ->
  own_asn:int ->
  universe:Bgp.Community.t list ->
  Bgp.Policy.match_clause ->
  Sym_route.t ->
  Concolic.Cval.t
(** The concolic truth value of one match clause (exposed for tests). *)
