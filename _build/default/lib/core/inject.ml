type scenario =
  | Prefix_hijack of { at : int; victim : int }
  | Bogus_netmask of { at : int }
  | Policy_dispute of { cycle : int list; victim : int }
  | Loop_check_bug of { at : int }
  | Inverted_med_bug of { at : int }
  | Crash_bug of { at : int; community : Bgp.Community.t }

let describe = function
  | Prefix_hijack { at; victim } ->
      Printf.sprintf "prefix hijack: node %d originates node %d's prefix" at victim
  | Bogus_netmask { at } -> Printf.sprintf "bogus netmask: node %d announces 127.0.0.0/8" at
  | Policy_dispute { cycle; victim } ->
      Printf.sprintf "policy dispute wheel over nodes [%s] for node %d's prefix"
        (String.concat ";" (List.map string_of_int cycle))
        victim
  | Loop_check_bug { at } -> Printf.sprintf "loop-check bypass bug at node %d" at
  | Inverted_med_bug { at } -> Printf.sprintf "inverted MED comparison bug at node %d" at
  | Crash_bug { at; community } ->
      Printf.sprintf "crash bug at node %d on community %s" at
        (Bgp.Community.to_string community)

let fault_class = function
  | Prefix_hijack _ | Bogus_netmask _ -> Fault.Operator_mistake
  | Policy_dispute _ -> Fault.Policy_conflict
  | Loop_check_bug _ | Inverted_med_bug _ | Crash_bug _ -> Fault.Programming_error

let target_node = function
  | Prefix_hijack { at; _ }
  | Bogus_netmask { at }
  | Loop_check_bug { at }
  | Inverted_med_bug { at }
  | Crash_bug { at; _ } -> at
  | Policy_dispute { cycle; _ } -> ( match cycle with n :: _ -> n | [] -> 0)

let set_bug build at f =
  let sp = Topology.Build.speaker build at in
  sp.Bgp.Speaker.sp_set_bugs (f (sp.Bgp.Speaker.sp_bugs ()))

(* Prepend a high-preference entry to [map_name] in [cfg] that pins the
   victim prefix via the given peer AS. *)
let with_dispute_entry cfg ~map_name ~victim_prefix ~via_asn =
  let entry =
    Bgp.Policy.entry 5 Bgp.Policy.Permit
      ~matches:
        [ Bgp.Policy.Match_prefix [ Bgp.Policy.prefix_rule victim_prefix ];
          Bgp.Policy.Match_as_path (Bgp.Policy.Path_neighbor_is via_asn) ]
      ~sets:
        [ Bgp.Policy.Del_community Topology.Gao_rexford.community_customer;
          Bgp.Policy.Del_community Topology.Gao_rexford.community_provider;
          Bgp.Policy.Add_community Topology.Gao_rexford.community_peer;
          Bgp.Policy.Set_local_pref 300 ]
  in
  let route_maps =
    List.map
      (fun (name, entries) ->
        if String.equal name map_name then (name, entry :: entries)
        else (name, entries))
      cfg.Bgp.Config.route_maps
  in
  { cfg with Bgp.Config.route_maps }

let apply build = function
  | Prefix_hijack { at; victim } ->
      let sp = Topology.Build.speaker build at in
      let cfg = sp.Bgp.Speaker.sp_config () in
      let stolen = Topology.Gao_rexford.prefix_of_node victim in
      sp.Bgp.Speaker.sp_set_config
        { cfg with Bgp.Config.networks = cfg.Bgp.Config.networks @ [ stolen ] }
  | Bogus_netmask { at } ->
      let sp = Topology.Build.speaker build at in
      let cfg = sp.Bgp.Speaker.sp_config () in
      let martian = Bgp.Prefix.of_string_exn "127.0.0.0/8" in
      sp.Bgp.Speaker.sp_set_config
        { cfg with Bgp.Config.networks = cfg.Bgp.Config.networks @ [ martian ] }
  | Policy_dispute { cycle; victim } ->
      let n = List.length cycle in
      if n < 3 then invalid_arg "Inject: dispute cycle needs at least 3 nodes";
      List.iteri
        (fun i node ->
          let next = List.nth cycle ((i + 1) mod n) in
          (match
             Topology.Graph.role_of build.Topology.Build.graph ~self:node
               ~neighbor:next
           with
          | Some Topology.Graph.Peer -> ()
          | Some _ | None ->
              invalid_arg
                (Printf.sprintf "Inject: dispute cycle members %d and %d are not peers"
                   node next));
          let sp = Topology.Build.speaker build node in
          let cfg = sp.Bgp.Speaker.sp_config () in
          sp.Bgp.Speaker.sp_set_config
            (with_dispute_entry cfg ~map_name:"FROM-PEER"
               ~victim_prefix:(Topology.Gao_rexford.prefix_of_node victim)
               ~via_asn:(Topology.Gao_rexford.asn_of_node next)))
        cycle
  | Loop_check_bug { at } ->
      set_bug build at (fun b -> { b with Bgp.Router.skip_loop_check = true })
  | Inverted_med_bug { at } ->
      set_bug build at (fun b -> { b with Bgp.Router.invert_med = true })
  | Crash_bug { at; community } ->
      set_bug build at (fun b -> { b with Bgp.Router.crash_community = Some community })
