type annotation = { label : string; highlight : bool }

let find_ann annotations id = List.assoc_opt id annotations

let dot ?(annotations = []) graph =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  line "graph dice_topology {";
  line "  rankdir=TB;";
  line "  node [shape=circle fontsize=10];";
  List.iter
    (fun (id, tier) ->
      let shape, color =
        match tier with
        | Graph.Tier1 -> ("doublecircle", "lightblue")
        | Graph.Transit -> ("circle", "lightyellow")
        | Graph.Stub -> ("circle", "white")
      in
      let ann = find_ann annotations id in
      let extra =
        match ann with
        | Some a ->
            Printf.sprintf "\\nAS%d\\n%s" (Gao_rexford.asn_of_node id) a.label
        | None -> Printf.sprintf "\\nAS%d" (Gao_rexford.asn_of_node id)
      in
      let color =
        match ann with Some { highlight = true; _ } -> "salmon" | Some _ | None -> color
      in
      line "  n%d [label=\"%d%s\" shape=%s style=filled fillcolor=%s];" id id extra
        shape color)
    graph.Graph.nodes;
  List.iter
    (fun (e : Graph.edge) ->
      match e.rel with
      | Graph.Customer_provider ->
          (* provider drawn above customer: b -> a *)
          line "  n%d -- n%d [style=solid];" e.b e.a
      | Graph.Peer_peer -> line "  n%d -- n%d [style=dashed];" e.a e.b)
    graph.Graph.edges;
  line "}";
  Buffer.contents b

let ascii ?(annotations = []) graph =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  let show_tier name tier =
    let members =
      List.filter (fun (_, t) -> t = tier) graph.Graph.nodes |> List.map fst
    in
    if members <> [] then begin
      line "%s:" name;
      List.iter
        (fun id ->
          let up = Graph.providers_of graph id in
          let down = Graph.customers_of graph id in
          let peers = Graph.peers_of graph id in
          let ann =
            match find_ann annotations id with
            | Some a -> Printf.sprintf "  <%s>%s" a.label (if a.highlight then " !" else "")
            | None -> ""
          in
          line "  [%2d] AS%-5d up:%-12s peer:%-12s down:%s%s" id
            (Gao_rexford.asn_of_node id)
            (String.concat "," (List.map string_of_int up))
            (String.concat "," (List.map string_of_int peers))
            (String.concat "," (List.map string_of_int down))
            ann)
        members
    end
  in
  show_tier "Tier-1" Graph.Tier1;
  show_tier "Transit" Graph.Transit;
  show_tier "Stub" Graph.Stub;
  Buffer.contents b

let summary_line graph =
  let count tier = List.length (List.filter (fun (_, t) -> t = tier) graph.Graph.nodes) in
  Printf.sprintf "%d ASes (%d tier-1, %d transit, %d stub), %d links"
    (Graph.size graph) (count Graph.Tier1) (count Graph.Transit) (count Graph.Stub)
    (List.length graph.Graph.edges)
