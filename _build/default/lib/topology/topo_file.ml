type parse_error = { line : int; message : string }

let pp_parse_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.message

exception Parse of parse_error

let perror line fmt = Printf.ksprintf (fun message -> raise (Parse { line; message })) fmt

let words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let strip_comment s =
  match String.index_opt s '#' with Some i -> String.sub s 0 i | None -> s

let int_arg line what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> perror line "expected integer for %s, got %S" what s

let tier_arg line = function
  | "tier1" -> Graph.Tier1
  | "transit" -> Graph.Transit
  | "stub" -> Graph.Stub
  | s -> perror line "unknown tier %S (tier1|transit|stub)" s

let parse text =
  try
    let nodes = ref [] and edges = ref [] in
    List.iteri
      (fun i raw ->
        let lineno = i + 1 in
        match words (strip_comment raw) with
        | [] -> ()
        | [ "node"; id; tier ] ->
            nodes := (int_arg lineno "node id" id, tier_arg lineno tier) :: !nodes
        | [ "edge"; a; b; "customer" ] ->
            edges :=
              { Graph.a = int_arg lineno "edge endpoint" a;
                b = int_arg lineno "edge endpoint" b;
                rel = Graph.Customer_provider }
              :: !edges
        | [ "edge"; a; b; "peer" ] ->
            edges :=
              { Graph.a = int_arg lineno "edge endpoint" a;
                b = int_arg lineno "edge endpoint" b;
                rel = Graph.Peer_peer }
              :: !edges
        | toks -> perror lineno "cannot parse: %s" (String.concat " " toks))
      (String.split_on_char '\n' text);
    match Graph.make ~nodes:(List.rev !nodes) ~edges:(List.rev !edges) with
    | g -> Ok g
    | exception Invalid_argument msg -> Error { line = 0; message = msg }
  with Parse e -> Error e

let parse_exn text =
  match parse text with
  | Ok g -> g
  | Error e -> invalid_arg (Format.asprintf "Topo_file.parse_exn: %a" pp_parse_error e)

let render (g : Graph.t) =
  let b = Buffer.create 256 in
  Buffer.add_string b "# DiCE topology\n";
  List.iter
    (fun (id, tier) ->
      Buffer.add_string b
        (Printf.sprintf "node %d %s\n" id (Graph.tier_to_string tier)))
    g.Graph.nodes;
  List.iter
    (fun (e : Graph.edge) ->
      let rel = match e.rel with Graph.Customer_provider -> "customer" | Graph.Peer_peer -> "peer" in
      Buffer.add_string b (Printf.sprintf "edge %d %d %s\n" e.a e.b rel))
    g.Graph.edges;
  Buffer.contents b

let load path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      close_in ic;
      (match parse text with
      | Ok g -> Ok g
      | Error e -> Error (Format.asprintf "%s: %a" path pp_parse_error e))

let save path g =
  let oc = open_out path in
  output_string oc (render g);
  close_out oc
