type params = {
  n_tier1 : int;
  n_transit : int;
  n_stub : int;
  transit_extra_peering : float;
  multihome : float;
}

let default_params =
  { n_tier1 = 3; n_transit = 8; n_stub = 16; transit_extra_peering = 0.3;
    multihome = 0.4 }

let generate ?(params = default_params) rng =
  let { n_tier1; n_transit; n_stub; transit_extra_peering; multihome } = params in
  if n_tier1 < 1 then invalid_arg "Generate.generate: need at least one tier-1";
  let tier1 = List.init n_tier1 (fun i -> i) in
  let transit = List.init n_transit (fun i -> n_tier1 + i) in
  let stub = List.init n_stub (fun i -> n_tier1 + n_transit + i) in
  let nodes =
    List.map (fun id -> (id, Graph.Tier1)) tier1
    @ List.map (fun id -> (id, Graph.Transit)) transit
    @ List.map (fun id -> (id, Graph.Stub)) stub
  in
  let edges = ref [] in
  let add_edge a b rel =
    if not (List.exists (fun (e : Graph.edge) ->
                (e.a = a && e.b = b) || (e.a = b && e.b = a))
              !edges)
    then edges := { Graph.a; b; rel } :: !edges
  in
  (* Tier-1 clique. *)
  List.iter
    (fun x -> List.iter (fun y -> if x < y then add_edge x y Graph.Peer_peer) tier1)
    tier1;
  (* Transit ASes home to tier-1s (and sometimes each other). *)
  List.iteri
    (fun i id ->
      let primary = Netsim.Rng.pick rng tier1 in
      add_edge id primary Graph.Customer_provider;
      if Netsim.Rng.chance rng multihome then begin
        let second = Netsim.Rng.pick rng tier1 in
        if second <> primary then add_edge id second Graph.Customer_provider
      end;
      (* Lateral peering with an earlier transit AS. *)
      if i > 0 && Netsim.Rng.chance rng transit_extra_peering then begin
        let other = List.nth transit (Netsim.Rng.int rng i) in
        if other <> id then add_edge (min id other) (max id other) Graph.Peer_peer
      end)
    transit;
  (* Stubs home to transit ASes (fall back to tier-1 when there is no
     transit tier). *)
  let providers_pool = if transit = [] then tier1 else transit in
  List.iter
    (fun id ->
      let primary = Netsim.Rng.pick rng providers_pool in
      add_edge id primary Graph.Customer_provider;
      if Netsim.Rng.chance rng multihome then begin
        let second = Netsim.Rng.pick rng providers_pool in
        if second <> primary then add_edge id second Graph.Customer_provider
      end)
    stub;
  Graph.make ~nodes ~edges:(List.rev !edges)

let link_model rng graph a b =
  let tier id = Graph.tier_of graph id in
  let ms v = Netsim.Time.span_ms v in
  match (tier a, tier b) with
  | Graph.Tier1, Graph.Tier1 ->
      Netsim.Link.make ~jitter:(ms 5) ~loss:0.001
        (ms (Netsim.Rng.int_in rng 20 40))
  | (Graph.Tier1, Graph.Transit | Graph.Transit, Graph.Tier1) ->
      Netsim.Link.make ~jitter:(ms 4) ~loss:0.002
        (ms (Netsim.Rng.int_in rng 10 30))
  | Graph.Transit, Graph.Transit ->
      Netsim.Link.make ~jitter:(ms 3) ~loss:0.002
        (ms (Netsim.Rng.int_in rng 8 20))
  | (Graph.Stub, _ | _, Graph.Stub) ->
      Netsim.Link.make ~jitter:(ms 2) ~loss:0.005
        (ms (Netsim.Rng.int_in rng 3 15))
