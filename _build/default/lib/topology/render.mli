(** Rendering of topologies — the stand-in for the paper's graphical
    demo interface (Figure 1).

    Produces Graphviz DOT (for offline rendering) and an ASCII overview
    (for the terminal demo), both optionally annotated with per-node
    exploration status. *)

type annotation = {
  label : string;  (** extra per-node line, e.g. "exploring 12/40" *)
  highlight : bool;  (** faulty / currently-exploring node *)
}

val dot : ?annotations:(int * annotation) list -> Graph.t -> string

val ascii : ?annotations:(int * annotation) list -> Graph.t -> string
(** Tier-by-tier textual layout with relationship edge counts. *)

val summary_line : Graph.t -> string
