(** Textual topology files.

    Line-oriented:
    {v
    # comment
    node 0 tier1
    node 1 transit
    node 2 stub
    edge 1 0 customer     # node 1 buys transit from node 0
    edge 0 2 peer         # nodes 0 and 2 peer
    v}

    [edge A B customer] means A is the customer end (A pays B). *)

type parse_error = { line : int; message : string }

val parse : string -> (Graph.t, parse_error) result
val parse_exn : string -> Graph.t
val render : Graph.t -> string
(** [parse (render g)] reconstructs [g]. *)

val load : string -> (Graph.t, string) result
(** Read and parse a file path. *)

val save : string -> Graph.t -> unit
val pp_parse_error : Format.formatter -> parse_error -> unit
