lib/topology/demo27.mli: Graph
