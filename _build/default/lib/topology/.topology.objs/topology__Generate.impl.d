lib/topology/generate.ml: Graph List Netsim
