lib/topology/topo_file.mli: Format Graph
