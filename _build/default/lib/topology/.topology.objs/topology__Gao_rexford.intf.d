lib/topology/gao_rexford.mli: Bgp Graph
