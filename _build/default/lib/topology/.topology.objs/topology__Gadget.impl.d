lib/topology/gadget.ml: Graph
