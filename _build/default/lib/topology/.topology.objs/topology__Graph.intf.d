lib/topology/graph.mli:
