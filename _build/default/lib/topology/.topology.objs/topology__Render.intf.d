lib/topology/render.mli: Graph
