lib/topology/render.ml: Buffer Gao_rexford Graph List Printf String
