lib/topology/gao_rexford.ml: Bgp Graph List Option
