lib/topology/build.mli: Bgp Graph Netsim
