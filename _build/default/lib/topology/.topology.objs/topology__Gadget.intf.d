lib/topology/gadget.mli: Graph
