lib/topology/build.ml: Bgp Gao_rexford Generate Graph List Netsim Printf
