lib/topology/demo27.ml: Graph List
