lib/topology/generate.mli: Graph Netsim
