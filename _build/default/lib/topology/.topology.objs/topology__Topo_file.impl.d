lib/topology/topo_file.ml: Buffer Format Graph List Printf String
