let victim = 0
let wheel = [ 1; 2; 3 ]

let cp a b = { Graph.a; b; rel = Graph.Customer_provider }
let pp a b = { Graph.a; b; rel = Graph.Peer_peer }

let bad_gadget () =
  Graph.make
    ~nodes:
      [ (0, Graph.Stub); (1, Graph.Transit); (2, Graph.Transit); (3, Graph.Transit) ]
    ~edges:[ cp 0 1; cp 0 2; cp 0 3; pp 1 2; pp 2 3; pp 1 3 ]

let embedded () =
  Graph.make
    ~nodes:
      [ (0, Graph.Stub);
        (1, Graph.Transit); (2, Graph.Transit); (3, Graph.Transit);
        (4, Graph.Tier1); (5, Graph.Tier1);
        (6, Graph.Stub); (7, Graph.Stub); (8, Graph.Stub);
        (9, Graph.Stub); (10, Graph.Stub); (11, Graph.Stub) ]
    ~edges:
      [ (* the gadget *)
        cp 0 1; cp 0 2; cp 0 3; pp 1 2; pp 2 3; pp 1 3;
        (* tier above *)
        pp 4 5; cp 1 4; cp 2 4; cp 2 5; cp 3 5;
        (* sibling stubs *)
        cp 6 1; cp 7 1; cp 8 2; cp 9 2; cp 10 3; cp 11 3 ]
