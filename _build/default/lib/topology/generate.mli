(** Random tiered Internet-like topology generation.

    Tier-1 ASes form a full peering clique; transit ASes buy from 1-3
    providers above them and may peer laterally; stubs buy from 1-2
    transit providers.  All generation is driven by a splittable RNG,
    so a seed fully determines the topology. *)

type params = {
  n_tier1 : int;
  n_transit : int;
  n_stub : int;
  transit_extra_peering : float;  (** probability of a lateral transit peering *)
  multihome : float;  (** probability a stub/transit adds a second provider *)
}

val default_params : params

val generate : ?params:params -> Netsim.Rng.t -> Graph.t
(** Always connected (every non-tier-1 node has at least one provider,
    every tier-1 peers with every other tier-1). *)

val link_model : Netsim.Rng.t -> Graph.t -> int -> int -> Netsim.Link.t
(** Internet-like link characteristics by tier: long fat tier-1 pipes,
    shorter edge links, a little jitter and loss everywhere. *)
