(** The fixed 27-router topology of the paper's Figure 1.

    3 tier-1 ASes in a peering clique, 8 transit ASes, 16 stubs.  The
    shape is fixed (not seed-dependent) so experiments on "the demo
    topology" are stable across runs. *)

val graph : Graph.t

val tier1 : int list
val transit : int list
val stubs : int list
