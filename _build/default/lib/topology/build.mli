(** Deploy a topology into a running simulation: one network node and
    one BGP speaker per AS, links with Internet-like characteristics,
    Gao–Rexford configurations.

    Deployments may be heterogeneous: by default every node runs the
    reference ("bird-like") implementation; [sparrow_nodes] selects
    nodes that run {!Bgp.Sparrow} instead. *)

type t = {
  graph : Graph.t;
  engine : Netsim.Engine.t;
  net : string Netsim.Network.t;
  speakers : (int * Bgp.Speaker.t) list;  (** sorted by node id *)
  trace : Netsim.Trace.t;
}

val deploy :
  ?seed:int ->
  ?config_of:(Graph.t -> int -> Bgp.Config.t) ->
  ?bugs_of:(int -> Bgp.Router.bugs) ->
  ?links_of:(Netsim.Rng.t -> Graph.t -> int -> int -> Netsim.Link.t) ->
  ?sparrow_nodes:int list ->
  Graph.t ->
  t
(** Defaults: Gao–Rexford configs, no bugs, [Generate.link_model],
    homogeneous bird-like deployment. *)

val speaker : t -> int -> Bgp.Speaker.t
val start_all : t -> unit

val run_for : t -> Netsim.Time.span -> unit

val converge : ?window:Netsim.Time.span -> ?timeout:Netsim.Time.span -> t -> bool
(** Advance the simulation until every speaker's Loc-RIB is unchanged
    and no UPDATE was sent over a whole [window] (default 30 s), or
    [timeout] (default 600 s) of simulated time elapses.  Returns
    whether quiescence was reached. *)

val total_updates_sent : t -> int

val loc_rib_snapshot : t -> (int * (Bgp.Prefix.t * int) list) list
(** Per node: selected (prefix, next-hop AS as node id, -1 for local). *)

val total_loc_routes : t -> int
val established_sessions : t -> int
(** Directed count, so a fully-up session between two routers counts 2. *)
