let tier1 = [ 0; 1; 2 ]
let transit = [ 3; 4; 5; 6; 7; 8; 9; 10 ]
let stubs = List.init 16 (fun i -> 11 + i)

let cp a b = { Graph.a; b; rel = Graph.Customer_provider }
let pp a b = { Graph.a; b; rel = Graph.Peer_peer }

let graph =
  let nodes =
    List.map (fun id -> (id, Graph.Tier1)) tier1
    @ List.map (fun id -> (id, Graph.Transit)) transit
    @ List.map (fun id -> (id, Graph.Stub)) stubs
  in
  let edges =
    [ (* tier-1 clique *)
      pp 0 1; pp 0 2; pp 1 2;
      (* transit homing: spread over the three tier-1s, two multihomed *)
      cp 3 0; cp 4 0; cp 5 1; cp 6 1; cp 7 2; cp 8 2;
      cp 9 0; cp 9 1;  (* multihomed transit *)
      cp 10 1; cp 10 2;  (* multihomed transit *)
      (* lateral transit peerings *)
      pp 3 5; pp 4 7; pp 6 8;
      (* stubs, two per transit in order; 13 and 20 multihomed *)
      cp 11 3; cp 12 3; cp 13 4; cp 13 5; cp 14 4; cp 15 5; cp 16 5;
      cp 17 6; cp 18 6; cp 19 7; cp 20 7; cp 20 8; cp 21 8; cp 22 9;
      cp 23 9; cp 24 10; cp 25 10; cp 26 3 ]
  in
  Graph.make ~nodes ~edges
