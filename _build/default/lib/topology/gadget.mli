(** Canonical policy-conflict topologies (Griffin's BAD GADGET family).

    A dispute wheel needs every wheel member to own a customer path to
    the victim; none of the random topologies guarantee that, so the
    policy-conflict experiments run on these. *)

val victim : int
(** Node 0: the destination everyone routes to. *)

val wheel : int list
(** Nodes 1..3: pairwise peers, each a provider of the victim. *)

val bad_gadget : unit -> Graph.t
(** 4 nodes: the victim multihomed to three pairwise-peering
    providers.  With Gao–Rexford policies alone this converges; with
    {!Dice.Inject.Policy_dispute} applied over [wheel] it oscillates
    forever. *)

val embedded : unit -> Graph.t
(** The gadget embedded in a larger Internet-like graph (the wheel
    members gain their own providers and sibling stubs) — 12 nodes. *)
