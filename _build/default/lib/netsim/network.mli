(** Message-passing network over the event engine.

    Nodes are integers; channels are directed, reliable and FIFO.  The
    network is polymorphic in the application message type.

    Two hooks exist for the snapshot subsystem:
    - control messages ([Marker]) travel on the same FIFO channels as
      data but are delivered to the control handler instead of the node;
    - a delivery tap observes every data message just before it reaches
      its destination handler (used to record in-flight messages). *)

type control = Marker of { snapshot : int; initiator : int }

type 'msg t

val create : ?trace:Trace.t -> Engine.t -> 'msg t
val engine : 'msg t -> Engine.t
val trace : 'msg t -> Trace.t option

val add_node : 'msg t -> int -> (src:int -> 'msg -> unit) -> unit
(** @raise Invalid_argument if the node already exists. *)

val set_handler : 'msg t -> int -> (src:int -> 'msg -> unit) -> unit
(** Replace an existing node's message handler. *)

val connect : 'msg t -> int -> int -> Link.t -> unit
(** [connect t a b link] creates the directed channel [a -> b].
    @raise Invalid_argument if either endpoint is unknown or the channel
    exists. *)

val connect_sym : 'msg t -> int -> int -> Link.t -> unit
(** Both directions with the same link model. *)

val send : 'msg t -> src:int -> dst:int -> 'msg -> unit
(** @raise Invalid_argument if the channel does not exist. *)

val send_control : 'msg t -> src:int -> dst:int -> control -> unit

val set_control_handler : 'msg t -> (self:int -> src:int -> control -> unit) -> unit
val set_delivery_tap : 'msg t -> (dst:int -> src:int -> 'msg -> unit) option -> unit

val nodes : 'msg t -> int list
(** Sorted. *)

val has_node : 'msg t -> int -> bool
val neighbors_out : 'msg t -> int -> int list
val neighbors_in : 'msg t -> int -> int list
val channels : 'msg t -> (int * int) list

val messages_sent : 'msg t -> int
(** Data messages ever submitted to [send]. *)

val messages_delivered : 'msg t -> int
val in_flight : 'msg t -> int
