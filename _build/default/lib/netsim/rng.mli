(** Deterministic, splittable pseudo-random number generator.

    Based on splitmix64.  Every simulation component receives its own
    [Rng.t] split from a single root seed, so adding a component never
    perturbs the random stream of another — runs are bit-reproducible. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. *)

val split : t -> t
(** [split t] derives an independent generator and advances [t]. *)

val copy : t -> t

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val bits64 : t -> int64
val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
val pick : t -> 'a list -> 'a
(** @raise Invalid_argument on the empty list. *)
