type 'a node = { prio : int; seq : int; value : 'a; mutable children : 'a node list }

type 'a t = {
  mutable root : 'a node option;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { root = None; size = 0; next_seq = 0 }
let is_empty t = t.root = None
let length t = t.size

let before a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let meld a b =
  if before a b then begin
    a.children <- b :: a.children;
    a
  end
  else begin
    b.children <- a :: b.children;
    b
  end

(* Two-pass pairing: meld adjacent pairs left-to-right, then fold right-to-left. *)
let rec merge_pairs = function
  | [] -> None
  | [ x ] -> Some x
  | a :: b :: rest -> (
      let ab = meld a b in
      match merge_pairs rest with None -> Some ab | Some r -> Some (meld ab r))

let push t ~prio value =
  let node = { prio; seq = t.next_seq; value; children = [] } in
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  t.root <- (match t.root with None -> Some node | Some r -> Some (meld node r))

let pop t =
  match t.root with
  | None -> None
  | Some r ->
      t.root <- merge_pairs r.children;
      t.size <- t.size - 1;
      Some (r.prio, r.value)

let peek_prio t = match t.root with None -> None | Some r -> Some r.prio

let clear t =
  t.root <- None;
  t.size <- 0
