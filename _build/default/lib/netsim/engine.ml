type state = Pending | Cancelled | Fired

type timer = { mutable state : state; action : unit -> unit; live : int ref }

type t = {
  mutable clock : Time.t;
  queue : timer Pqueue.t;
  root_rng : Rng.t;
  live : int ref;
  mutable stopping : bool;
}

let create ?(seed = 0x51CE) () =
  { clock = Time.zero; queue = Pqueue.create (); root_rng = Rng.create seed;
    live = ref 0; stopping = false }

let now t = t.clock
let rng t = t.root_rng

let at t when_ f =
  let when_ = if Time.(when_ < t.clock) then t.clock else when_ in
  let timer = { state = Pending; action = f; live = t.live } in
  Pqueue.push t.queue ~prio:(Time.to_us when_) timer;
  incr t.live;
  timer

let schedule t ~after f = at t (Time.add t.clock (max 0 after)) f

let cancel = function
  | { state = Pending; _ } as timer ->
      timer.state <- Cancelled;
      decr timer.live
  | { state = Cancelled | Fired; _ } -> ()

let is_cancelled timer = timer.state = Cancelled

let pending t = !(t.live)

let step t =
  match Pqueue.pop t.queue with
  | None -> false
  | Some (prio, timer) -> (
      match timer.state with
      | Cancelled | Fired -> true
      | Pending ->
          timer.state <- Fired;
          decr t.live;
          t.clock <- Time.of_us prio;
          timer.action ();
          true)

let run ?until ?max_events t =
  t.stopping <- false;
  let fired = ref 0 in
  let continue () =
    (not t.stopping)
    && (match max_events with Some m -> !fired < m | None -> true)
    &&
    match (Pqueue.peek_prio t.queue, until) with
    | None, _ -> false
    | Some p, Some u -> p <= Time.to_us u
    | Some _, None -> true
  in
  while continue () do
    if step t then incr fired
  done;
  (* When bounded by [until], advance the clock to the horizon so repeated
     bounded runs observe monotonic time. *)
  match until with
  | Some u when Time.(t.clock < u) && not t.stopping -> t.clock <- u
  | Some _ | None -> ()

let stop t = t.stopping <- true
