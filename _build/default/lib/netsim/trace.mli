(** Structured event trace.

    A bounded ring of timestamped records, shared by the simulator and
    the systems built on it.  Used by tests to assert on event ordering
    and by the demo to display activity. *)

type record = {
  at : Time.t;
  node : int;  (** -1 when not attributable to a node *)
  kind : string;
  detail : string;
}

type t

val create : ?capacity:int -> unit -> t
val emit : t -> at:Time.t -> node:int -> kind:string -> string -> unit
val to_list : t -> record list
(** Oldest first. *)

val length : t -> int
(** Number of records currently retained. *)

val total : t -> int
(** Number of records ever emitted (including evicted ones). *)

val find : t -> kind:string -> record list
val clear : t -> unit
val pp_record : Format.formatter -> record -> unit
