(** Discrete-event simulation engine.

    The engine owns the virtual clock and an event queue of callbacks.
    Execution is strictly deterministic: events fire in (time, insertion)
    order. *)

type t

type timer
(** Handle to a scheduled event; may be cancelled before it fires. *)

val create : ?seed:int -> unit -> t

val now : t -> Time.t
val rng : t -> Rng.t
(** Root generator; split it rather than using it directly from several
    components. *)

val schedule : t -> after:Time.span -> (unit -> unit) -> timer
(** [schedule t ~after f] runs [f] at [now t + after].  A non-positive
    [after] is treated as zero (runs at the current instant, after the
    events already queued for it). *)

val at : t -> Time.t -> (unit -> unit) -> timer
(** Schedule at an absolute instant; instants in the past fire "now". *)

val cancel : timer -> unit
(** Idempotent; cancelling a fired timer is a no-op. *)

val is_cancelled : timer -> bool

val pending : t -> int
(** Number of live (not cancelled, not fired) events. *)

val step : t -> bool
(** Execute the next event.  Returns [false] when the queue is empty. *)

val run : ?until:Time.t -> ?max_events:int -> t -> unit
(** Run until the queue drains, [until] is reached, or [max_events] have
    fired — whichever comes first. *)

val stop : t -> unit
(** Makes the current [run] return after the executing event completes. *)
