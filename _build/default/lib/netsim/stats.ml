type dist = { mutable samples : float list; mutable n : int }

type t = {
  counters : (string, int ref) Hashtbl.t;
  dists : (string, dist) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 16; dists = Hashtbl.create 16 }

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.counters name r;
      r

let incr t name = Stdlib.incr (counter t name)
let add t name n = counter t name := !(counter t name) + n
let get t name = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let dist t name =
  match Hashtbl.find_opt t.dists name with
  | Some d -> d
  | None ->
      let d = { samples = []; n = 0 } in
      Hashtbl.add t.dists name d;
      d

let observe t name v =
  let d = dist t name in
  d.samples <- v :: d.samples;
  d.n <- d.n + 1

let count t name = match Hashtbl.find_opt t.dists name with Some d -> d.n | None -> 0

let with_samples t name f =
  match Hashtbl.find_opt t.dists name with
  | Some d when d.n > 0 -> f d.samples
  | Some _ | None -> nan

let mean t name =
  with_samples t name (fun s -> List.fold_left ( +. ) 0. s /. float_of_int (List.length s))

let min_value t name = with_samples t name (fun s -> List.fold_left min infinity s)
let max_value t name = with_samples t name (fun s -> List.fold_left max neg_infinity s)

let percentile t name p =
  with_samples t name (fun s ->
      let a = Array.of_list s in
      Array.sort compare a;
      let n = Array.length a in
      let rank = int_of_float (ceil (p *. float_of_int n)) in
      a.(max 0 (min (n - 1) (rank - 1))))

let counters t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let merge_into ~dst src =
  Hashtbl.iter (fun k r -> add dst k !r) src.counters;
  Hashtbl.iter (fun k d -> List.iter (observe dst k) (List.rev d.samples)) src.dists

let clear t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.dists

let pp ppf t =
  List.iter (fun (k, v) -> Format.fprintf ppf "%s=%d@ " k v) (counters t)
