(** Directed link model: propagation latency, jitter and loss.

    Channels are reliable and FIFO (the systems we simulate run over
    TCP): a "lost" transmission is modelled as one or more retransmit
    timeouts added to the delivery delay, never as an actual drop. *)

type t = {
  latency : Time.span;  (** base one-way propagation delay *)
  jitter : Time.span;  (** uniform extra delay in [\[0, jitter\]] *)
  loss : float;  (** per-transmission loss probability, in [\[0, 1)] *)
  retransmit : Time.span;  (** delay added per lost transmission *)
}

val make : ?jitter:Time.span -> ?loss:float -> ?retransmit:Time.span -> Time.span -> t
(** [make latency] — defaults: no jitter, no loss, 300 ms retransmit. *)

val ideal : t
(** 1 ms, no jitter, no loss. *)

val delay : t -> Rng.t -> Time.span
(** Sample a delivery delay (includes simulated retransmissions). *)

val pp : Format.formatter -> t -> unit
