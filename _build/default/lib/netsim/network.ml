type control = Marker of { snapshot : int; initiator : int }

type 'msg envelope = Data of 'msg | Control of control

type 'msg channel = {
  link : Link.t;
  chan_rng : Rng.t;
  mutable last_delivery : Time.t;  (* FIFO floor for the next delivery *)
}

type 'msg node = { mutable handler : src:int -> 'msg -> unit }

type 'msg t = {
  eng : Engine.t;
  tr : Trace.t option;
  node_tbl : (int, 'msg node) Hashtbl.t;
  chan_tbl : (int * int, 'msg channel) Hashtbl.t;
  net_rng : Rng.t;
  mutable control_handler : self:int -> src:int -> control -> unit;
  mutable tap : (dst:int -> src:int -> 'msg -> unit) option;
  mutable sent : int;
  mutable delivered : int;
  mutable flying : int;
}

let create ?trace eng =
  {
    eng;
    tr = trace;
    node_tbl = Hashtbl.create 64;
    chan_tbl = Hashtbl.create 256;
    net_rng = Rng.split (Engine.rng eng);
    control_handler = (fun ~self:_ ~src:_ _ -> ());
    tap = None;
    sent = 0;
    delivered = 0;
    flying = 0;
  }

let engine t = t.eng
let trace t = t.tr

let add_node t id handler =
  if Hashtbl.mem t.node_tbl id then
    invalid_arg (Printf.sprintf "Network.add_node: node %d exists" id);
  Hashtbl.add t.node_tbl id { handler }

let set_handler t id handler =
  match Hashtbl.find_opt t.node_tbl id with
  | Some n -> n.handler <- handler
  | None -> invalid_arg (Printf.sprintf "Network.set_handler: no node %d" id)

let connect t a b link =
  if not (Hashtbl.mem t.node_tbl a) then
    invalid_arg (Printf.sprintf "Network.connect: no node %d" a);
  if not (Hashtbl.mem t.node_tbl b) then
    invalid_arg (Printf.sprintf "Network.connect: no node %d" b);
  if Hashtbl.mem t.chan_tbl (a, b) then
    invalid_arg (Printf.sprintf "Network.connect: channel %d->%d exists" a b);
  Hashtbl.add t.chan_tbl (a, b)
    { link; chan_rng = Rng.split t.net_rng; last_delivery = Time.zero }

let connect_sym t a b link =
  connect t a b link;
  connect t b a link

let emit t ~node ~kind detail =
  match t.tr with
  | Some tr -> Trace.emit tr ~at:(Engine.now t.eng) ~node ~kind detail
  | None -> ()

let deliver t ~src ~dst env =
  t.flying <- t.flying - 1;
  match env with
  | Control c -> t.control_handler ~self:dst ~src c
  | Data m -> (
      t.delivered <- t.delivered + 1;
      (match t.tap with Some f -> f ~dst ~src m | None -> ());
      emit t ~node:dst ~kind:"deliver" (Printf.sprintf "from %d" src);
      match Hashtbl.find_opt t.node_tbl dst with
      | Some n -> n.handler ~src m
      | None -> ())

let transmit t ~src ~dst env =
  match Hashtbl.find_opt t.chan_tbl (src, dst) with
  | None -> invalid_arg (Printf.sprintf "Network.send: no channel %d->%d" src dst)
  | Some ch ->
      let now = Engine.now t.eng in
      let arrival = Time.add now (Link.delay ch.link ch.chan_rng) in
      (* Clamp to the previous delivery instant to preserve FIFO order. *)
      let arrival =
        if Time.(arrival < ch.last_delivery) then ch.last_delivery else arrival
      in
      ch.last_delivery <- arrival;
      t.flying <- t.flying + 1;
      ignore (Engine.at t.eng arrival (fun () -> deliver t ~src ~dst env))

let send t ~src ~dst msg =
  t.sent <- t.sent + 1;
  emit t ~node:src ~kind:"send" (Printf.sprintf "to %d" dst);
  transmit t ~src ~dst (Data msg)

let send_control t ~src ~dst c = transmit t ~src ~dst (Control c)

let set_control_handler t f = t.control_handler <- f
let set_delivery_tap t tap = t.tap <- tap

let nodes t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.node_tbl [] |> List.sort Int.compare

let has_node t id = Hashtbl.mem t.node_tbl id

let neighbors_out t id =
  Hashtbl.fold (fun (a, b) _ acc -> if a = id then b :: acc else acc) t.chan_tbl []
  |> List.sort Int.compare

let neighbors_in t id =
  Hashtbl.fold (fun (a, b) _ acc -> if b = id then a :: acc else acc) t.chan_tbl []
  |> List.sort Int.compare

let channels t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.chan_tbl [] |> List.sort compare

let messages_sent t = t.sent
let messages_delivered t = t.delivered
let in_flight t = t.flying
