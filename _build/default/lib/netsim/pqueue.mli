(** Imperative priority queue keyed by [(priority, sequence)].

    A pairing heap.  Entries with equal priority dequeue in insertion
    order (stability), which keeps the discrete-event engine
    deterministic. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> prio:int -> 'a -> unit
(** Lower [prio] dequeues first. *)

val pop : 'a t -> (int * 'a) option
(** Removes and returns the minimum entry as [(prio, value)]. *)

val peek_prio : 'a t -> int option
val clear : 'a t -> unit
