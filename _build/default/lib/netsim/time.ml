type t = int
type span = int

let zero = 0

let of_us n =
  if n < 0 then invalid_arg "Time.of_us: negative" else n

let to_us t = t
let of_ms n = of_us (n * 1_000)
let of_sec s = of_us (int_of_float (s *. 1e6))
let to_sec t = float_of_int t /. 1e6
let span_us n = n
let span_ms n = n * 1_000
let span_sec s = int_of_float (s *. 1e6)
let add t d = max 0 (t + d)
let diff a b = a - b
let compare = Int.compare
let equal = Int.equal
let ( <= ) (a : t) (b : t) = Stdlib.( <= ) a b
let ( < ) (a : t) (b : t) = Stdlib.( < ) a b

let pp ppf t =
  if t mod 1_000_000 = 0 then Format.fprintf ppf "%ds" (t / 1_000_000)
  else if t mod 1_000 = 0 then Format.fprintf ppf "%dms" (t / 1_000)
  else Format.fprintf ppf "%dus" t
