type record = { at : Time.t; node : int; kind : string; detail : string }

type t = {
  capacity : int;
  ring : record option array;
  mutable next : int;
  mutable count : int;
}

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; ring = Array.make capacity None; next = 0; count = 0 }

let emit t ~at ~node ~kind detail =
  t.ring.(t.next) <- Some { at; node; kind; detail };
  t.next <- (t.next + 1) mod t.capacity;
  t.count <- t.count + 1

let length t = min t.count t.capacity
let total t = t.count

let to_list t =
  let n = length t in
  let start = if t.count <= t.capacity then 0 else t.next in
  List.init n (fun i ->
      match t.ring.((start + i) mod t.capacity) with
      | Some r -> r
      | None -> assert false)

let find t ~kind = List.filter (fun r -> String.equal r.kind kind) (to_list t)

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.next <- 0;
  t.count <- 0

let pp_record ppf r =
  Format.fprintf ppf "[%a] node=%d %s: %s" Time.pp r.at r.node r.kind r.detail
