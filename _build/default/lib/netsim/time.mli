(** Simulated time.

    Time is a count of microseconds since the start of the simulation,
    represented as a non-negative [int].  Durations ([span]) use the same
    unit. *)

type t = private int

type span = int
(** A duration in microseconds. *)

val zero : t

val of_us : int -> t
(** [of_us n] is the instant [n] microseconds after the origin.
    @raise Invalid_argument if [n < 0]. *)

val to_us : t -> int
val of_ms : int -> t
val of_sec : float -> t
val to_sec : t -> float

val span_us : int -> span
val span_ms : int -> span
val span_sec : float -> span

val add : t -> span -> t
(** [add t d] is [t + d], clipped at [zero] if [d] is negative. *)

val diff : t -> t -> span
(** [diff a b] is [a - b] in microseconds (may be negative). *)

val compare : t -> t -> int
val equal : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val pp : Format.formatter -> t -> unit
