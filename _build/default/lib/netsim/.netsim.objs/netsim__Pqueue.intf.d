lib/netsim/pqueue.mli:
