lib/netsim/time.mli: Format
