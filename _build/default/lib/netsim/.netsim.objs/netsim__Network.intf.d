lib/netsim/network.mli: Engine Link Trace
