lib/netsim/network.ml: Engine Hashtbl Int Link List Printf Rng Time Trace
