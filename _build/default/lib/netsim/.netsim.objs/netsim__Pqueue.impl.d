lib/netsim/pqueue.ml:
