lib/netsim/stats.ml: Array Format Hashtbl List Stdlib String
