lib/netsim/engine.ml: Pqueue Rng Time
