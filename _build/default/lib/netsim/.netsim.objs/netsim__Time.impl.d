lib/netsim/time.ml: Format Int Stdlib
