lib/netsim/trace.mli: Format Time
