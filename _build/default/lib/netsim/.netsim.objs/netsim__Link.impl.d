lib/netsim/link.ml: Format Rng Time
