lib/netsim/engine.mli: Rng Time
