lib/netsim/rng.mli:
