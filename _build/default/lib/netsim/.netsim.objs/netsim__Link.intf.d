lib/netsim/link.mli: Format Rng Time
