(** BGP path attributes (RFC 4271 §5). *)

type origin = Igp | Egp | Incomplete

val origin_code : origin -> int
(** 0 / 1 / 2 — also the decision-process preference order (lower wins). *)

val origin_of_code : int -> origin option
val origin_to_string : origin -> string

type unknown = {
  u_type : int;  (** attribute type code *)
  u_flags : int;  (** attribute flags byte *)
  u_value : string;  (** raw value bytes *)
}
(** Unrecognized optional attribute, carried through if transitive. *)

type t = {
  origin : origin;
  as_path : As_path.t;
  next_hop : Ipv4.t;
  med : int option;
  local_pref : int option;
  atomic_aggregate : bool;
  aggregator : (int * Ipv4.t) option;
  communities : Community.t list;
  unknown : unknown list;
}

val make :
  ?origin:origin ->
  ?as_path:As_path.t ->
  ?med:int option ->
  ?local_pref:int option ->
  ?atomic_aggregate:bool ->
  ?aggregator:(int * Ipv4.t) option ->
  ?communities:Community.t list ->
  ?unknown:unknown list ->
  next_hop:Ipv4.t ->
  unit ->
  t

val with_local_pref : int -> t -> t
val with_med : int option -> t -> t
val prepend_as : int -> t -> t
val add_community : Community.t -> t -> t
val remove_community : Community.t -> t -> t
val has_community : Community.t -> t -> bool
val effective_local_pref : t -> int
(** [local_pref] or the default of 100. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

(* Attribute type codes *)
val code_origin : int
val code_as_path : int
val code_next_hop : int
val code_med : int
val code_local_pref : int
val code_atomic_aggregate : int
val code_aggregator : int
val code_communities : int

(* Attribute flag bits *)
val flag_optional : int
val flag_transitive : int
val flag_partial : int
val flag_extended : int
