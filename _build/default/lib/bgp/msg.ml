type open_msg = { version : int; my_as : int; hold_time : int; bgp_id : Ipv4.t }

type update = {
  withdrawn : Prefix.t list;
  attrs : Attr.t option;
  nlri : Prefix.t list;
}

type notification = { code : int; subcode : int; data : string }

type t =
  | Open of open_msg
  | Update of update
  | Notification of notification
  | Keepalive

let keepalive = Keepalive

let update ?(withdrawn = []) ?(attrs = None) ?(nlri = []) () =
  Update { withdrawn; attrs; nlri }

let kind = function
  | Open _ -> "OPEN"
  | Update _ -> "UPDATE"
  | Notification _ -> "NOTIFICATION"
  | Keepalive -> "KEEPALIVE"

module Error = struct
  let message_header = 1
  let open_message = 2
  let update_message = 3
  let hold_timer_expired = 4
  let fsm_error = 5
  let cease = 6

  let bad_marker = 1
  let bad_length = 2
  let bad_type = 3

  let unsupported_version = 1
  let bad_peer_as = 2
  let bad_bgp_id = 3
  let unacceptable_hold_time = 6

  let malformed_attribute_list = 1
  let unrecognized_wellknown = 2
  let missing_wellknown = 3
  let attribute_flags = 4
  let attribute_length = 5
  let invalid_origin = 6
  let invalid_next_hop = 8
  let optional_attribute = 9
  let invalid_network_field = 10
  let malformed_as_path = 11

  let to_string code subcode =
    let major =
      match code with
      | 1 -> "message-header-error"
      | 2 -> "open-message-error"
      | 3 -> "update-message-error"
      | 4 -> "hold-timer-expired"
      | 5 -> "fsm-error"
      | 6 -> "cease"
      | _ -> Printf.sprintf "code-%d" code
    in
    Printf.sprintf "%s/%d" major subcode
end

let pp ppf = function
  | Open o ->
      Format.fprintf ppf "OPEN(as=%d hold=%d id=%a)" o.my_as o.hold_time Ipv4.pp
        o.bgp_id
  | Update u ->
      Format.fprintf ppf "UPDATE(withdraw=[%s] nlri=[%s]%a)"
        (String.concat ";" (List.map Prefix.to_string u.withdrawn))
        (String.concat ";" (List.map Prefix.to_string u.nlri))
        (fun ppf -> function
          | Some a -> Format.fprintf ppf " %a" Attr.pp a
          | None -> ())
        u.attrs
  | Notification n ->
      Format.fprintf ppf "NOTIFICATION(%s)" (Error.to_string n.code n.subcode)
  | Keepalive -> Format.pp_print_string ppf "KEEPALIVE"
