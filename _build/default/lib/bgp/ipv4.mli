(** IPv4 addresses. *)

type t = private int
(** Stored as the 32-bit big-endian integer value of the address. *)

val of_int32_exn : int -> t
(** @raise Invalid_argument if outside [\[0, 2^32)]. *)

val to_int : t -> int

val of_octets : int -> int -> int -> int -> t
(** @raise Invalid_argument if an octet is outside [\[0, 255\]]. *)

val to_octets : t -> int * int * int * int

val of_string : string -> (t, string) result
(** Dotted-quad parsing, strict: four decimal octets, no extra characters. *)

val of_string_exn : string -> t
val to_string : t -> string

val compare : t -> t -> int
val equal : t -> t -> bool
val bit : t -> int -> bool
(** [bit a i] is bit [i] of [a], counting from the most significant
    (bit 0) to the least (bit 31). *)

val pp : Format.formatter -> t -> unit

val any : t
(** 0.0.0.0 *)

val is_martian : t -> bool
(** Loopback (127/8), current-network (0/8), or class-E (240/4) space —
    never legitimately announced. *)

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
