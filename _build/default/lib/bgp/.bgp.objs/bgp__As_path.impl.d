lib/bgp/as_path.ml: Format List Stdlib String
