lib/bgp/community.ml: Format Int Printf String
