lib/bgp/fsm.ml: Format Ipv4 Msg Printf
