lib/bgp/policy.ml: As_path Attr Community Format Int Ipv4 List Option Prefix
