lib/bgp/speaker.mli: Config Ipv4 Lazy Msg Netsim Prefix Rib Router
