lib/bgp/prefix.mli: Format Ipv4 Map Set
