lib/bgp/config.mli: Format Ipv4 Policy Prefix
