lib/bgp/router.ml: As_path Attr Community Config Decision Format Fsm Hashtbl Ipv4 List Msg Netsim Option Policy Prefix Printf Rib String Wire
