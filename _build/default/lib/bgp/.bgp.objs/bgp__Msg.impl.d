lib/bgp/msg.ml: Attr Format Ipv4 List Prefix Printf String
