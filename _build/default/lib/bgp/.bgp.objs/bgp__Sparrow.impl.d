lib/bgp/sparrow.ml: As_path Attr Community Config Ipv4 List Msg Netsim Option Policy Prefix Prefix_trie Printf Rib Router Speaker String Wire
