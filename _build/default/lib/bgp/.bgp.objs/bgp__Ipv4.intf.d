lib/bgp/ipv4.mli: Format Map Set
