lib/bgp/sparrow.mli: Config Ipv4 Msg Netsim Rib Router Speaker
