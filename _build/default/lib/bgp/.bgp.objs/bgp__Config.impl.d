lib/bgp/config.ml: Array Attr Buffer Community Format Hashtbl Ipv4 List Policy Prefix Printf String
