lib/bgp/attr.mli: As_path Community Format Ipv4
