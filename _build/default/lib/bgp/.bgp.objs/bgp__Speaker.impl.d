lib/bgp/speaker.ml: Config Ipv4 Lazy Msg Netsim Rib Router
