lib/bgp/prefix_trie.ml: Ipv4 List Prefix
