lib/bgp/wire.ml: As_path Attr Buffer Char Community Format Ipv4 List Msg Option Prefix Printf String
