lib/bgp/policy.mli: Attr Community Format Ipv4 Prefix
