lib/bgp/router.mli: Community Config Fsm Ipv4 Msg Netsim Prefix Rib
