lib/bgp/fsm.mli: Format Ipv4 Msg
