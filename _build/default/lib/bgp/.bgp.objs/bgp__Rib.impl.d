lib/bgp/rib.ml: As_path Attr Format Ipv4 List Option Prefix
