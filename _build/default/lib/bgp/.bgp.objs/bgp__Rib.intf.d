lib/bgp/rib.mli: Attr Format Ipv4 Prefix
