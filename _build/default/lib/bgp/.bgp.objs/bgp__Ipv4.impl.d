lib/bgp/ipv4.ml: Format Int Map Printf Set String
