lib/bgp/attr.ml: As_path Community Format Ipv4 List Option Stdlib String
