lib/bgp/msg.mli: Attr Format Ipv4 Prefix
