lib/bgp/prefix_trie.mli: Ipv4 Prefix
