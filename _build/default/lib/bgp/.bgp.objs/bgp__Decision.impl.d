lib/bgp/decision.ml: As_path Attr Bool Int Ipv4 List Option Rib
