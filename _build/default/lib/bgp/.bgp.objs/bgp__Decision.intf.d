lib/bgp/decision.mli: Rib
