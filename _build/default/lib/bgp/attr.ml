type origin = Igp | Egp | Incomplete

let origin_code = function Igp -> 0 | Egp -> 1 | Incomplete -> 2

let origin_of_code = function
  | 0 -> Some Igp
  | 1 -> Some Egp
  | 2 -> Some Incomplete
  | _ -> None

let origin_to_string = function Igp -> "IGP" | Egp -> "EGP" | Incomplete -> "incomplete"

type unknown = { u_type : int; u_flags : int; u_value : string }

type t = {
  origin : origin;
  as_path : As_path.t;
  next_hop : Ipv4.t;
  med : int option;
  local_pref : int option;
  atomic_aggregate : bool;
  aggregator : (int * Ipv4.t) option;
  communities : Community.t list;
  unknown : unknown list;
}

let make ?(origin = Igp) ?(as_path = As_path.empty) ?(med = None) ?(local_pref = None)
    ?(atomic_aggregate = false) ?(aggregator = None) ?(communities = [])
    ?(unknown = []) ~next_hop () =
  { origin; as_path; next_hop; med; local_pref; atomic_aggregate; aggregator;
    communities; unknown }

let with_local_pref lp t = { t with local_pref = Some lp }
let with_med med t = { t with med }
let prepend_as asn t = { t with as_path = As_path.prepend asn t.as_path }

let add_community c t =
  if List.exists (Community.equal c) t.communities then t
  else { t with communities = List.sort Community.compare (c :: t.communities) }

let remove_community c t =
  { t with communities = List.filter (fun x -> not (Community.equal c x)) t.communities }

let has_community c t = List.exists (Community.equal c) t.communities

let effective_local_pref t = Option.value t.local_pref ~default:100

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b

let pp ppf t =
  Format.fprintf ppf "@[<h>origin=%s path=[%a] nh=%a lp=%s med=%s coms=[%s]@]"
    (origin_to_string t.origin) As_path.pp t.as_path Ipv4.pp t.next_hop
    (match t.local_pref with Some v -> string_of_int v | None -> "-")
    (match t.med with Some v -> string_of_int v | None -> "-")
    (String.concat "," (List.map Community.to_string t.communities))

let code_origin = 1
let code_as_path = 2
let code_next_hop = 3
let code_med = 4
let code_local_pref = 5
let code_atomic_aggregate = 6
let code_aggregator = 7
let code_communities = 8

let flag_optional = 0x80
let flag_transitive = 0x40
let flag_partial = 0x20
let flag_extended = 0x10
