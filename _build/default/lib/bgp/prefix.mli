(** CIDR prefixes.

    Values are canonical: host bits below the mask are zero. *)

type t = private { addr : Ipv4.t; len : int }

val make : Ipv4.t -> int -> t
(** Canonicalizes [addr] by masking.  @raise Invalid_argument if
    [len] is outside [\[0, 32\]]. *)

val addr : t -> Ipv4.t
val len : t -> int

val of_string : string -> (t, string) result
(** ["10.0.0.0/8"]; the address part must already be canonical. *)

val of_string_exn : string -> t
val to_string : t -> string

val mem : Ipv4.t -> t -> bool
(** [mem a p] — does [a] fall inside [p]? *)

val subsumes : t -> t -> bool
(** [subsumes p q] — is [q] equal to or more specific than [p]
    (i.e. [q]'s address block is contained in [p]'s)? *)

val compare : t -> t -> int
(** Total order: by address, then by length (shorter first). *)

val equal : t -> t -> bool
val default : t
(** 0.0.0.0/0 *)

val is_martian : t -> bool
(** Covers martian address space, or is a /0 .. /7 "bogus netmask"
    announcement of non-default space, or more specific than /24 in the
    global table model. *)

val split : t -> (t * t) option
(** The two /n+1 halves, or [None] for a /32. *)

val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
