(** AS_PATH attribute values. *)

type segment =
  | Seq of int list  (** AS_SEQUENCE: ordered *)
  | Set of int list  (** AS_SET: unordered, counts as one hop *)

type t = segment list
(** First segment is nearest; the origin AS is the last ASN of the last
    segment. *)

val empty : t
val is_empty : t -> bool

val length : t -> int
(** Decision-process length: each ASN in a [Seq] counts 1, each [Set]
    counts 1 (RFC 4271 9.1.2.2). *)

val prepend : int -> t -> t
(** Prepend one ASN, merging into a leading [Seq] (creating one if
    needed, or if the leading segment is full at 255 ASNs). *)

val prepend_n : int -> int -> t -> t
(** [prepend_n asn k path] prepends [asn] [k] times. *)

val contains : int -> t -> bool
(** Loop detection. *)

val origin_as : t -> int option
(** The rightmost ASN of the rightmost [Seq]; [None] for empty paths or
    paths ending in an [Set]. *)

val neighbor_as : t -> int option
(** The leftmost ASN — the neighboring AS the route was learned from. *)

val as_list : t -> int list
(** All ASNs in order of appearance (sets flattened). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit
