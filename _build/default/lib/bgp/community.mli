(** BGP communities (RFC 1997). *)

type t = private int
(** 32-bit value, conventionally displayed as [asn:tag]. *)

val make : int -> int -> t
(** [make asn tag], both 16-bit.  @raise Invalid_argument otherwise. *)

val of_int32_exn : int -> t
val to_int : t -> int
val asn : t -> int
val tag : t -> int

val no_export : t
(** 0xFFFFFF01 — do not advertise outside the AS. *)

val no_advertise : t
(** 0xFFFFFF02 — do not advertise to any peer. *)

val of_string : string -> (t, string) result
(** ["65001:100"], or the well-known names ["no-export"],
    ["no-advertise"]. *)

val to_string : t -> string
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
