(** RFC 4271 binary message codec.

    One BGP message per buffer.  Decoding validates the header, the
    attribute flags and lengths, and the NLRI encoding; violations are
    reported with the notification (code, subcode) a conforming speaker
    would send, which the session FSM forwards to the peer. *)

type error = { code : int; subcode : int; reason : string }

val encode : Msg.t -> string
(** @raise Invalid_argument if the message exceeds the 4096-byte limit. *)

val decode : string -> (Msg.t, error) result
(** Decodes exactly one message occupying the whole buffer. *)

val header_length : int
(** 19 *)

val max_length : int
(** 4096 *)

val pp_error : Format.formatter -> error -> unit
