type t = { addr : Ipv4.t; len : int }

let mask_of_len len =
  if len = 0 then 0 else 0xFFFF_FFFF lxor ((1 lsl (32 - len)) - 1)

let make addr len =
  if len < 0 || len > 32 then invalid_arg "Prefix.make: length out of range";
  { addr = Ipv4.of_int32_exn (Ipv4.to_int addr land mask_of_len len); len }

let addr t = t.addr
let len t = t.len

let of_string s =
  match String.index_opt s '/' with
  | None -> Error (Printf.sprintf "invalid prefix %S: missing '/'" s)
  | Some i -> (
      let addr_s = String.sub s 0 i in
      let len_s = String.sub s (i + 1) (String.length s - i - 1) in
      match Ipv4.of_string addr_s with
      | Error e -> Error e
      | Ok a -> (
          match int_of_string_opt len_s with
          | Some l when l >= 0 && l <= 32 ->
              let p = make a l in
              if Ipv4.equal p.addr a then Ok p
              else Error (Printf.sprintf "prefix %S is not canonical" s)
          | Some _ | None -> Error (Printf.sprintf "invalid prefix length in %S" s)))

let of_string_exn s =
  match of_string s with Ok t -> t | Error e -> invalid_arg e

let to_string t = Printf.sprintf "%s/%d" (Ipv4.to_string t.addr) t.len

let mem a t = Ipv4.to_int a land mask_of_len t.len = Ipv4.to_int t.addr

let subsumes p q = q.len >= p.len && mem q.addr p

let compare a b =
  match Ipv4.compare a.addr b.addr with 0 -> Int.compare a.len b.len | c -> c

let equal a b = compare a b = 0

let default = make Ipv4.any 0

let is_martian t =
  Ipv4.is_martian t.addr
  || (t.len < 8 && t.len > 0)
  || t.len > 24

let split t =
  if t.len >= 32 then None
  else
    let len = t.len + 1 in
    let low = make t.addr len in
    let high =
      make (Ipv4.of_int32_exn (Ipv4.to_int t.addr lor (1 lsl (32 - len)))) len
    in
    Some (low, high)

let pp ppf t = Format.pp_print_string ppf (to_string t)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
