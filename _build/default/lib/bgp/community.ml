type t = int

let make asn tag =
  if asn < 0 || asn > 0xFFFF || tag < 0 || tag > 0xFFFF then
    invalid_arg "Community.make: components must be 16-bit";
  (asn lsl 16) lor tag

let of_int32_exn v =
  if v < 0 || v > 0xFFFF_FFFF then invalid_arg "Community.of_int32_exn";
  v

let to_int t = t
let asn t = t lsr 16
let tag t = t land 0xFFFF

let no_export = 0xFFFFFF01
let no_advertise = 0xFFFFFF02

let of_string s =
  match s with
  | "no-export" -> Ok no_export
  | "no-advertise" -> Ok no_advertise
  | _ -> (
      match String.index_opt s ':' with
      | None -> Error (Printf.sprintf "invalid community %S" s)
      | Some i -> (
          let a = String.sub s 0 i in
          let b = String.sub s (i + 1) (String.length s - i - 1) in
          match (int_of_string_opt a, int_of_string_opt b) with
          | Some a, Some b when a >= 0 && a <= 0xFFFF && b >= 0 && b <= 0xFFFF ->
              Ok (make a b)
          | _ -> Error (Printf.sprintf "invalid community %S" s)))

let to_string t =
  if t = no_export then "no-export"
  else if t = no_advertise then "no-advertise"
  else Printf.sprintf "%d:%d" (asn t) (tag t)

let compare = Int.compare
let equal = Int.equal
let pp ppf t = Format.pp_print_string ppf (to_string t)
