(** BGP message types (RFC 4271 §4) and notification error codes. *)

type open_msg = {
  version : int;
  my_as : int;
  hold_time : int;  (** seconds *)
  bgp_id : Ipv4.t;
}

type update = {
  withdrawn : Prefix.t list;
  attrs : Attr.t option;  (** [None] iff [nlri] is empty *)
  nlri : Prefix.t list;
}

type notification = { code : int; subcode : int; data : string }

type t =
  | Open of open_msg
  | Update of update
  | Notification of notification
  | Keepalive

val keepalive : t
val update : ?withdrawn:Prefix.t list -> ?attrs:Attr.t option -> ?nlri:Prefix.t list -> unit -> t
val kind : t -> string
val pp : Format.formatter -> t -> unit

(** Notification error codes (RFC 4271 §6). *)
module Error : sig
  val message_header : int
  val open_message : int
  val update_message : int
  val hold_timer_expired : int
  val fsm_error : int
  val cease : int

  (* Message-header subcodes *)
  val bad_marker : int
  val bad_length : int
  val bad_type : int

  (* OPEN subcodes *)
  val unsupported_version : int
  val bad_peer_as : int
  val bad_bgp_id : int
  val unacceptable_hold_time : int

  (* UPDATE subcodes *)
  val malformed_attribute_list : int
  val unrecognized_wellknown : int
  val missing_wellknown : int
  val attribute_flags : int
  val attribute_length : int
  val invalid_origin : int
  val invalid_next_hop : int
  val optional_attribute : int
  val invalid_network_field : int
  val malformed_as_path : int

  val to_string : int -> int -> string
end
