type t = {
  sp_node : int;
  sp_impl : string;
  sp_config : unit -> Config.t;
  sp_set_config : Config.t -> unit;
  sp_rib : unit -> Rib.t;
  sp_bugs : unit -> Router.bugs;
  sp_set_bugs : Router.bugs -> unit;
  sp_start : unit -> unit;
  sp_established : unit -> Ipv4.t list;
  sp_process_raw : from_node:int -> string -> unit;
  sp_inject_update : from:Ipv4.t -> Msg.update -> unit;
  sp_stats : unit -> Netsim.Stats.t;
  sp_capture : unit -> capture;
}

and capture = {
  cap_node : int;
  cap_impl : string;
  cap_config : Config.t;
  cap_route_count : int Lazy.t;
  cap_respawn : net:string Netsim.Network.t -> bugs:Router.bugs -> t;
}

let loc_rib t = (t.sp_rib ()).Rib.loc
let capture t = t.sp_capture ()

let rec of_router r =
  { sp_node = Router.node r;
    sp_impl = "bird-like";
    sp_config = (fun () -> Router.config r);
    sp_set_config = Router.set_config r;
    sp_rib = (fun () -> Router.rib r);
    sp_bugs = (fun () -> Router.bugs r);
    sp_set_bugs = Router.set_bugs r;
    sp_start = (fun () -> Router.start r);
    sp_established = (fun () -> Router.established_peers r);
    sp_process_raw = (fun ~from_node raw -> Router.process_raw r ~from_node raw);
    sp_inject_update = (fun ~from u -> Router.inject_update r ~from u);
    sp_stats = (fun () -> Router.stats r);
    sp_capture = (fun () -> capture_router r) }

and capture_router r =
  let st = Router.state r in
  let cfg = Router.config r in
  let rib = st.Router.rib in
  { cap_node = Router.node r;
    cap_impl = "bird-like";
    cap_config = cfg;
    cap_route_count = lazy (Rib.loc_cardinal rib + Rib.total_adj_in rib);
    cap_respawn =
      (fun ~net ~bugs ->
        let clone =
          Router.create ~auto_restart:false ~liveness_timers:false ~bugs ~net
            ~node:(Router.node r) cfg
        in
        Router.restore clone st;
        of_router clone) }
