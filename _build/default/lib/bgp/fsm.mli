(** BGP session finite-state machine (RFC 4271 §8), as a pure transition
    function.

    The host (the router) owns the timers: it feeds expiry events in and
    re-arms timers by inspecting the state after each transition.  The
    FSM itself only computes state changes and output actions, which
    makes the transition relation directly unit-testable. *)

type state = Idle | Connect | Active | OpenSent | OpenConfirm | Established

type config = {
  my_as : int;
  bgp_id : Ipv4.t;
  hold_time : int;  (** proposed, seconds; 0 disables keepalives *)
  peer_as : int;  (** expected remote AS *)
}

type t = {
  state : state;
  peer_bgp_id : Ipv4.t option;  (** learned from the peer's OPEN *)
  negotiated_hold : int;  (** min(ours, peer's) once OPEN is received *)
}

type event =
  | Manual_start
  | Manual_stop
  | Tcp_established
  | Tcp_failed
  | Connect_retry_expired
  | Hold_timer_expired
  | Keepalive_timer_expired
  | Msg_received of Msg.t

type action =
  | Start_connect  (** initiate the (simulated) transport *)
  | Send of Msg.t
  | Deliver_update of Msg.update  (** hand a routing update to the RIB *)
  | Session_up
  | Session_down of string  (** reason; host must flush routes learned *)

val create : unit -> t
val handle : config -> t -> event -> t * action list

val state_to_string : state -> string
val pp_state : Format.formatter -> state -> unit
val keepalive_interval : t -> int
(** Negotiated hold / 3 (seconds); 0 when keepalives are disabled. *)
