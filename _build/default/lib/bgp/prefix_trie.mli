(** Persistent binary radix trie keyed by prefixes.

    Supports exact lookup, longest-prefix match, and enumeration of
    entries subsumed by a covering prefix.  Persistence makes router
    forwarding state checkpointable in O(1). *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool
val cardinal : 'a t -> int
val add : Prefix.t -> 'a -> 'a t -> 'a t
(** Replaces an existing binding for the exact prefix. *)

val remove : Prefix.t -> 'a t -> 'a t
val find : Prefix.t -> 'a t -> 'a option
(** Exact match. *)

val longest_match : Ipv4.t -> 'a t -> (Prefix.t * 'a) option
(** The most specific stored prefix containing the address. *)

val covered : Prefix.t -> 'a t -> (Prefix.t * 'a) list
(** All bindings whose prefix is equal to or more specific than the
    argument, in prefix order. *)

val fold : (Prefix.t -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
(** In prefix order. *)

val bindings : 'a t -> (Prefix.t * 'a) list
val of_list : (Prefix.t * 'a) list -> 'a t
