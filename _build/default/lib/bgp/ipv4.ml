type t = int

let max_value = 0xFFFF_FFFF

let of_int32_exn v =
  if v < 0 || v > max_value then invalid_arg "Ipv4.of_int32_exn: out of range";
  v

let to_int t = t

let of_octets a b c d =
  let check o = if o < 0 || o > 255 then invalid_arg "Ipv4.of_octets: bad octet" in
  check a; check b; check c; check d;
  (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let to_octets t =
  ((t lsr 24) land 0xFF, (t lsr 16) land 0xFF, (t lsr 8) land 0xFF, t land 0xFF)

let of_string s =
  let err = Error (Printf.sprintf "invalid IPv4 address %S" s) in
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
      let octet x =
        if x = "" || String.length x > 3 then None
        else if String.exists (fun c -> c < '0' || c > '9') x then None
        else
          let v = int_of_string x in
          if v > 255 then None else Some v
      in
      match (octet a, octet b, octet c, octet d) with
      | Some a, Some b, Some c, Some d -> Ok (of_octets a b c d)
      | _ -> err)
  | _ -> err

let of_string_exn s =
  match of_string s with Ok t -> t | Error e -> invalid_arg e

let to_string t =
  let a, b, c, d = to_octets t in
  Printf.sprintf "%d.%d.%d.%d" a b c d

let compare = Int.compare
let equal = Int.equal

let bit t i =
  if i < 0 || i > 31 then invalid_arg "Ipv4.bit: index out of range";
  (t lsr (31 - i)) land 1 = 1

let pp ppf t = Format.pp_print_string ppf (to_string t)

let any = 0

let is_martian t =
  let top = t lsr 24 in
  top = 0 || top = 127 || top >= 240

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
