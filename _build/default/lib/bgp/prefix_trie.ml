(* Uncompressed persistent binary trie; depth is bounded by 32 so the
   lack of path compression costs at most 32 nodes per operation. *)

type 'a t = Empty | Node of { value : 'a option; zero : 'a t; one : 'a t }

let empty = Empty

let is_empty = function Empty -> true | Node _ -> false

let node value zero one =
  match (value, zero, one) with
  | None, Empty, Empty -> Empty
  | _ -> Node { value; zero; one }

let rec cardinal = function
  | Empty -> 0
  | Node { value; zero; one } ->
      (match value with Some _ -> 1 | None -> 0) + cardinal zero + cardinal one

let add prefix v t =
  let a = Prefix.addr prefix and n = Prefix.len prefix in
  let rec go depth t =
    let value, zero, one =
      match t with
      | Empty -> (None, Empty, Empty)
      | Node { value; zero; one } -> (value, zero, one)
    in
    if depth = n then node (Some v) zero one
    else if Ipv4.bit a depth then node value zero (go (depth + 1) one)
    else node value (go (depth + 1) zero) one
  in
  go 0 t

let remove prefix t =
  let a = Prefix.addr prefix and n = Prefix.len prefix in
  let rec go depth t =
    match t with
    | Empty -> Empty
    | Node { value; zero; one } ->
        if depth = n then node None zero one
        else if Ipv4.bit a depth then node value zero (go (depth + 1) one)
        else node value (go (depth + 1) zero) one
  in
  go 0 t

let find prefix t =
  let a = Prefix.addr prefix and n = Prefix.len prefix in
  let rec go depth t =
    match t with
    | Empty -> None
    | Node { value; zero; one } ->
        if depth = n then value
        else if Ipv4.bit a depth then go (depth + 1) one
        else go (depth + 1) zero
  in
  go 0 t

let longest_match addr t =
  let rec go depth t best =
    match t with
    | Empty -> best
    | Node { value; zero; one } ->
        let best =
          match value with
          | Some v -> Some (Prefix.make addr depth, v)
          | None -> best
        in
        if depth = 32 then best
        else if Ipv4.bit addr depth then go (depth + 1) one best
        else go (depth + 1) zero best
  in
  go 0 t None

(* Reconstruct each stored prefix from the path taken: [acc_bits] holds the
   address bits chosen so far, packed into the high bits of an int. *)
let fold f t init =
  let rec go depth bits t acc =
    match t with
    | Empty -> acc
    | Node { value; zero; one } ->
        let acc =
          match value with
          | Some v -> f (Prefix.make (Ipv4.of_int32_exn bits) depth) v acc
          | None -> acc
        in
        let acc = go (depth + 1) bits zero acc in
        go (depth + 1) (bits lor (1 lsl (31 - depth))) one acc
  in
  go 0 0 t init

let bindings t = List.rev (fold (fun p v acc -> (p, v) :: acc) t [])

let covered prefix t =
  (* Walk down to the subtree rooted at [prefix], then enumerate it. *)
  let a = Prefix.addr prefix and n = Prefix.len prefix in
  let rec descend depth t =
    match t with
    | Empty -> Empty
    | Node { zero; one; _ } as node ->
        if depth = n then node
        else if Ipv4.bit a depth then descend (depth + 1) one
        else descend (depth + 1) zero
  in
  let rec go depth bits t acc =
    match t with
    | Empty -> acc
    | Node { value; zero; one } ->
        let acc =
          match value with
          | Some v -> (Prefix.make (Ipv4.of_int32_exn bits) depth, v) :: acc
          | None -> acc
        in
        let acc = go (depth + 1) bits zero acc in
        go (depth + 1) (bits lor (1 lsl (31 - depth))) one acc
  in
  List.rev (go n (Ipv4.to_int a) (descend 0 t) [])

let of_list l = List.fold_left (fun t (p, v) -> add p v t) empty l
