(** Routing policy: route maps.

    A route map is an ordered list of entries.  The first entry whose
    match clauses all hold decides: [Permit] applies the set clauses and
    accepts, [Deny] rejects.  If no entry matches the route is rejected
    (default-deny, as in BIRD filters). *)

type prefix_rule = { rule_prefix : Prefix.t; ge : int option; le : int option }
(** Matches prefixes subsumed by [rule_prefix] whose length satisfies
    [ge <= len <= le]; both default to the rule's own length (exact
    match). *)

val prefix_rule : ?ge:int -> ?le:int -> Prefix.t -> prefix_rule
val prefix_rule_matches : prefix_rule -> Prefix.t -> bool

type as_path_test =
  | Path_contains of int
  | Path_originated_by of int
  | Path_neighbor_is of int
  | Path_length_at_most of int
  | Path_length_at_least of int

type match_clause =
  | Match_prefix of prefix_rule list  (** disjunction *)
  | Match_as_path of as_path_test
  | Match_community of Community.t
  | Match_origin of Attr.origin
  | Match_next_hop of Ipv4.t

type set_clause =
  | Set_local_pref of int
  | Set_med of int option
  | Set_origin of Attr.origin
  | Add_community of Community.t
  | Del_community of Community.t
  | Prepend_as of int * int  (** asn, count *)
  | Set_next_hop of Ipv4.t

type action = Permit | Deny

type entry = {
  seq : int;
  action : action;
  matches : match_clause list;  (** conjunction; empty matches anything *)
  sets : set_clause list;
}

type t = entry list

val accept_all : t
val deny_all : t
(** [deny_all] is the empty route map (default deny). *)

val entry : ?matches:match_clause list -> ?sets:set_clause list -> int -> action -> entry

val normalize : t -> t
(** Sort entries by sequence number. *)

val matches_route : match_clause -> Prefix.t -> Attr.t -> bool
val apply_set : set_clause -> Attr.t -> Attr.t

val apply : t -> Prefix.t -> Attr.t -> Attr.t option
(** [None] when the route is rejected. *)

val pp : Format.formatter -> t -> unit
