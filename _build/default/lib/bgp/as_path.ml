type segment = Seq of int list | Set of int list
type t = segment list

let empty = []
let is_empty t = t = []

let length t =
  let seg = function Seq l -> List.length l | Set _ -> 1 in
  List.fold_left (fun acc s -> acc + seg s) 0 t

let max_segment = 255

let prepend asn = function
  | Seq l :: rest when List.length l < max_segment -> Seq (asn :: l) :: rest
  | path -> Seq [ asn ] :: path

let rec prepend_n asn k path =
  if k <= 0 then path else prepend_n asn (k - 1) (prepend asn path)

let contains asn t =
  let in_seg = function Seq l | Set l -> List.mem asn l in
  List.exists in_seg t

let origin_as t =
  match List.rev t with
  | Seq l :: _ -> ( match List.rev l with last :: _ -> Some last | [] -> None)
  | Set _ :: _ | [] -> None

let neighbor_as = function
  | Seq (a :: _) :: _ -> Some a
  | Set (a :: _) :: _ -> Some a
  | (Seq [] | Set []) :: _ | [] -> None

let as_list t = List.concat_map (function Seq l | Set l -> l) t

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b

let to_string t =
  let seg = function
    | Seq l -> String.concat " " (List.map string_of_int l)
    | Set l -> "{" ^ String.concat "," (List.map string_of_int l) ^ "}"
  in
  String.concat " " (List.map seg t)

let pp ppf t = Format.pp_print_string ppf (to_string t)
