(** Implementation-agnostic BGP speaker interface.

    The systems DiCE targets are {e heterogeneous}: several independent
    implementations of the same open protocol coexist.  Everything
    above the wire (snapshots, clones, property checks, exploration)
    talks to a speaker through this record, never to a concrete
    implementation — mirroring how DiCE drives deployed routers through
    protocol messages rather than internal APIs.

    Two implementations ship with this repository: {!Router} (the
    BIRD-like reference) and {!Sparrow} (an independently structured
    implementation of the same RFCs). *)

type t = {
  sp_node : int;
  sp_impl : string;  (** implementation name, e.g. "bird-like" *)
  sp_config : unit -> Config.t;
  sp_set_config : Config.t -> unit;
  sp_rib : unit -> Rib.t;
      (** RIB-shaped view of current routing state (copies allowed) *)
  sp_bugs : unit -> Router.bugs;
  sp_set_bugs : Router.bugs -> unit;
  sp_start : unit -> unit;
  sp_established : unit -> Ipv4.t list;
  sp_process_raw : from_node:int -> string -> unit;
  sp_inject_update : from:Ipv4.t -> Msg.update -> unit;
  sp_stats : unit -> Netsim.Stats.t;
  sp_capture : unit -> capture;
}

and capture = {
  cap_node : int;
  cap_impl : string;
  cap_config : Config.t;
  cap_route_count : int Lazy.t;  (** Loc-RIB + Adj-RIB-In entries (computed on demand: counting is O(n), capturing must stay O(1)) *)
  cap_respawn : net:string Netsim.Network.t -> bugs:Router.bugs -> t;
      (** Recreate this speaker (same implementation, same state) on an
          isolated network whose node ids match the original. *)
}

val loc_rib : t -> Rib.route Prefix.Map.t
val capture : t -> capture

val of_router : Router.t -> t
(** Wrap the reference implementation.  Respawned clones run with
    liveness timers disabled (shadow semantics). *)
