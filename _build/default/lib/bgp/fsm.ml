type state = Idle | Connect | Active | OpenSent | OpenConfirm | Established

type config = { my_as : int; bgp_id : Ipv4.t; hold_time : int; peer_as : int }

type t = {
  state : state;
  peer_bgp_id : Ipv4.t option;
  negotiated_hold : int;
}

type event =
  | Manual_start
  | Manual_stop
  | Tcp_established
  | Tcp_failed
  | Connect_retry_expired
  | Hold_timer_expired
  | Keepalive_timer_expired
  | Msg_received of Msg.t

type action =
  | Start_connect
  | Send of Msg.t
  | Deliver_update of Msg.update
  | Session_up
  | Session_down of string

let create () = { state = Idle; peer_bgp_id = None; negotiated_hold = 0 }

let state_to_string = function
  | Idle -> "Idle"
  | Connect -> "Connect"
  | Active -> "Active"
  | OpenSent -> "OpenSent"
  | OpenConfirm -> "OpenConfirm"
  | Established -> "Established"

let pp_state ppf s = Format.pp_print_string ppf (state_to_string s)

let keepalive_interval t =
  if t.negotiated_hold = 0 then 0 else max 1 (t.negotiated_hold / 3)

let idle = { state = Idle; peer_bgp_id = None; negotiated_hold = 0 }

let notification code subcode =
  Msg.Notification { code; subcode; data = "" }

let open_msg (c : config) =
  Msg.Open { version = 4; my_as = c.my_as; hold_time = c.hold_time; bgp_id = c.bgp_id }

let drop reason extra = (idle, Session_down reason :: extra)

(* Validation of a received OPEN beyond what the codec enforces:
   the advertised AS must match the configured peer AS. *)
let check_open (c : config) (o : Msg.open_msg) =
  if o.my_as <> c.peer_as then
    Error
      ( Msg.Error.bad_peer_as,
        Printf.sprintf "peer AS %d, expected %d" o.my_as c.peer_as )
  else Ok ()

let handle (c : config) t event =
  match (t.state, event) with
  (* --- administrative --- *)
  | Idle, Manual_start -> ({ t with state = Connect }, [ Start_connect ])
  | Idle, _ -> (t, [])
  | _, Manual_stop ->
      drop "manual stop" [ Send (notification Msg.Error.cease 0) ]
  | _, Manual_start -> (t, [])
  (* --- transport --- *)
  | Connect, Tcp_established -> ({ t with state = OpenSent }, [ Send (open_msg c) ])
  | Connect, Tcp_failed -> ({ t with state = Active }, [])
  | Active, Connect_retry_expired -> ({ t with state = Connect }, [ Start_connect ])
  | (Connect | Active), (Connect_retry_expired | Tcp_established | Tcp_failed) ->
      (t, [])
  | (Connect | Active), (Hold_timer_expired | Keepalive_timer_expired) -> (t, [])
  | (Connect | Active), Msg_received _ -> (t, [])
  (* --- OpenSent --- *)
  | OpenSent, Msg_received (Msg.Open o) -> (
      match check_open c o with
      | Error (subcode, reason) ->
          drop reason [ Send (notification Msg.Error.open_message subcode) ]
      | Ok () ->
          ( { state = OpenConfirm;
              peer_bgp_id = Some o.bgp_id;
              negotiated_hold = min c.hold_time o.hold_time },
            [ Send Msg.keepalive ] ))
  | OpenSent, Msg_received (Msg.Notification n) ->
      drop (Printf.sprintf "notification %s" (Msg.Error.to_string n.code n.subcode)) []
  | OpenSent, Msg_received (Msg.Update _ | Msg.Keepalive) ->
      drop "message out of order in OpenSent"
        [ Send (notification Msg.Error.fsm_error 0) ]
  | OpenSent, Hold_timer_expired ->
      drop "hold timer expired" [ Send (notification Msg.Error.hold_timer_expired 0) ]
  | OpenSent, (Tcp_established | Tcp_failed | Connect_retry_expired | Keepalive_timer_expired) ->
      (t, [])
  (* --- OpenConfirm --- *)
  | OpenConfirm, Msg_received Msg.Keepalive ->
      ({ t with state = Established }, [ Session_up ])
  | OpenConfirm, Msg_received (Msg.Notification n) ->
      drop (Printf.sprintf "notification %s" (Msg.Error.to_string n.code n.subcode)) []
  | OpenConfirm, Msg_received (Msg.Open _ | Msg.Update _) ->
      drop "message out of order in OpenConfirm"
        [ Send (notification Msg.Error.fsm_error 0) ]
  | OpenConfirm, Keepalive_timer_expired -> (t, [ Send Msg.keepalive ])
  | OpenConfirm, Hold_timer_expired ->
      drop "hold timer expired" [ Send (notification Msg.Error.hold_timer_expired 0) ]
  | OpenConfirm, (Tcp_established | Tcp_failed | Connect_retry_expired) -> (t, [])
  (* --- Established --- *)
  | Established, Msg_received (Msg.Update u) -> (t, [ Deliver_update u ])
  | Established, Msg_received Msg.Keepalive -> (t, [])
  | Established, Msg_received (Msg.Notification n) ->
      drop (Printf.sprintf "notification %s" (Msg.Error.to_string n.code n.subcode)) []
  | Established, Msg_received (Msg.Open _) ->
      drop "OPEN in Established" [ Send (notification Msg.Error.fsm_error 0) ]
  | Established, Keepalive_timer_expired -> (t, [ Send Msg.keepalive ])
  | Established, Hold_timer_expired ->
      drop "hold timer expired" [ Send (notification Msg.Error.hold_timer_expired 0) ]
  | Established, (Tcp_established | Tcp_failed | Connect_retry_expired) -> (t, [])
