type source = {
  peer_addr : Ipv4.t;
  peer_as : int;
  peer_bgp_id : Ipv4.t;
  ebgp : bool;
  igp_metric : int;
}

let local_source =
  { peer_addr = Ipv4.any; peer_as = 0; peer_bgp_id = Ipv4.any; ebgp = false;
    igp_metric = 0 }

type route = { attrs : Attr.t; source : source }

let is_local r = Ipv4.equal r.source.peer_addr Ipv4.any

type t = {
  adj_in : route Prefix.Map.t Ipv4.Map.t;
  loc : route Prefix.Map.t;
  adj_out : Attr.t Prefix.Map.t Ipv4.Map.t;
}

let empty = { adj_in = Ipv4.Map.empty; loc = Prefix.Map.empty; adj_out = Ipv4.Map.empty }

let peer_map peer m = Option.value (Ipv4.Map.find_opt peer m) ~default:Prefix.Map.empty

let update_peer_map peer f m =
  let pm = f (peer_map peer m) in
  if Prefix.Map.is_empty pm then Ipv4.Map.remove peer m else Ipv4.Map.add peer pm m

let adj_in_set peer prefix route t =
  { t with adj_in = update_peer_map peer (Prefix.Map.add prefix route) t.adj_in }

let adj_in_del peer prefix t =
  { t with adj_in = update_peer_map peer (Prefix.Map.remove prefix) t.adj_in }

let adj_in_get peer prefix t = Prefix.Map.find_opt prefix (peer_map peer t.adj_in)
let adj_in_peer peer t = peer_map peer t.adj_in

let drop_peer peer t =
  { t with adj_in = Ipv4.Map.remove peer t.adj_in; adj_out = Ipv4.Map.remove peer t.adj_out }

let candidates prefix t =
  Ipv4.Map.fold
    (fun _ pm acc ->
      match Prefix.Map.find_opt prefix pm with Some r -> r :: acc | None -> acc)
    t.adj_in []

let prefixes_from_peer peer t =
  Prefix.Map.fold (fun p _ acc -> p :: acc) (peer_map peer t.adj_in) [] |> List.rev

let loc_set prefix route t = { t with loc = Prefix.Map.add prefix route t.loc }
let loc_del prefix t = { t with loc = Prefix.Map.remove prefix t.loc }
let loc_get prefix t = Prefix.Map.find_opt prefix t.loc
let loc_prefixes t = Prefix.Map.fold (fun p _ acc -> p :: acc) t.loc [] |> List.rev
let loc_cardinal t = Prefix.Map.cardinal t.loc

let adj_out_set peer prefix attrs t =
  { t with adj_out = update_peer_map peer (Prefix.Map.add prefix attrs) t.adj_out }

let adj_out_del peer prefix t =
  { t with adj_out = update_peer_map peer (Prefix.Map.remove prefix) t.adj_out }

let adj_out_get peer prefix t = Prefix.Map.find_opt prefix (peer_map peer t.adj_out)
let adj_out_peer peer t = peer_map peer t.adj_out

let total_adj_in t =
  Ipv4.Map.fold (fun _ pm acc -> acc + Prefix.Map.cardinal pm) t.adj_in 0

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Prefix.Map.iter
    (fun p r ->
      Format.fprintf ppf "%a via %a [%a]@ " Prefix.pp p Ipv4.pp r.source.peer_addr
        As_path.pp r.attrs.Attr.as_path)
    t.loc;
  Format.fprintf ppf "@]"
