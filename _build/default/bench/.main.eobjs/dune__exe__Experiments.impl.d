bench/experiments.ml: Bgp Concolic Dice Format Hashtbl List Netsim Printf Snapshot String Tables Topology Unix
