bench/main.mli:
