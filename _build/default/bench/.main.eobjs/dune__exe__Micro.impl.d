bench/micro.ml: Analyze Bechamel Benchmark Bgp Concolic Hashtbl Instance List Measure Netsim Printf Snapshot Staged Tables Test Time Toolkit Topology
