(* Minimal fixed-width table printer for the experiment harness. *)

let rule widths =
  print_string "+";
  List.iter (fun w -> print_string (String.make (w + 2) '-' ^ "+")) widths;
  print_newline ()

let row widths cells =
  print_string "|";
  List.iter2
    (fun w c ->
      let c = if String.length c > w then String.sub c 0 w else c in
      Printf.printf " %-*s |" w c)
    widths cells;
  print_newline ()

let print ~title ~header rows =
  Printf.printf "\n### %s\n\n" title;
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left (fun acc r -> max acc (String.length (List.nth r i)))
          (String.length h) rows)
      header
  in
  rule widths;
  row widths header;
  rule widths;
  List.iter (row widths) rows;
  rule widths

let section name = Printf.printf "\n==================== %s ====================\n" name
let note fmt = Printf.printf fmt
