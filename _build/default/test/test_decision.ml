(* The decision process: each tie-breaker in isolation and in order. *)

let check = Alcotest.check

let addr s = Bgp.Ipv4.of_string_exn s

let route ?(lp = None) ?(path = [ 65002 ]) ?(origin = Bgp.Attr.Igp) ?(med = None)
    ?(ebgp = true) ?(igp_metric = 0) ?(peer = "10.0.0.2") ?(bgp_id = "10.0.0.2")
    ?(peer_as = 65002) () =
  { Bgp.Rib.attrs =
      Bgp.Attr.make ~origin
        ~as_path:(if path = [] then [] else [ Bgp.As_path.Seq path ])
        ~med ~local_pref:lp ~next_hop:(addr peer) ();
    source =
      { Bgp.Rib.peer_addr = addr peer; peer_as; peer_bgp_id = addr bgp_id; ebgp;
        igp_metric } }

let cfg = Bgp.Decision.default_config

let step_testable =
  Alcotest.testable
    (fun ppf s -> Format.pp_print_string ppf (Bgp.Decision.step_to_string s))
    ( = )

let expect_step name a b step winner_is_a =
  let c, s = Bgp.Decision.compare_routes cfg a b in
  check step_testable (name ^ " step") step s;
  Alcotest.(check bool) (name ^ " winner") winner_is_a (c < 0)

let local_route_wins () =
  let local =
    { Bgp.Rib.attrs = Bgp.Attr.make ~next_hop:(addr "10.0.0.1") ();
      source = Bgp.Rib.local_source }
  in
  (* Even a customer route with sky-high preference loses to a locally
     originated route. *)
  let c, s = Bgp.Decision.compare_routes cfg local (route ~lp:(Some 500) ~path:[ 1 ] ()) in
  check step_testable "local-origin step" Bgp.Decision.Local_origin s;
  Alcotest.(check bool) "local wins" true (c < 0)

let local_pref_wins () =
  expect_step "higher local-pref"
    (route ~lp:(Some 200) ~path:[ 1; 2; 3 ] ())
    (route ~lp:(Some 100) ())
    Bgp.Decision.Local_pref true

let path_length () =
  expect_step "shorter path"
    (route ~path:[ 1 ] ())
    (route ~path:[ 2; 3 ] ())
    Bgp.Decision.As_path_length true

let as_set_counts_one () =
  let a =
    { (route ()) with
      Bgp.Rib.attrs =
        Bgp.Attr.make ~as_path:[ Bgp.As_path.Seq [ 1 ]; Bgp.As_path.Set [ 2; 3; 4 ] ]
          ~next_hop:(addr "10.0.0.2") () }
  in
  let b = route ~path:[ 9; 8; 7 ] () in
  (* a's length is 2 (Seq 1 + Set), b's is 3. *)
  expect_step "set counts one" a b Bgp.Decision.As_path_length true

let origin_preference () =
  expect_step "IGP over EGP"
    (route ~origin:Bgp.Attr.Igp ())
    (route ~origin:Bgp.Attr.Egp ())
    Bgp.Decision.Origin true;
  expect_step "EGP over incomplete"
    (route ~origin:Bgp.Attr.Egp ())
    (route ~origin:Bgp.Attr.Incomplete ())
    Bgp.Decision.Origin true

let med_same_neighbor () =
  expect_step "lower med, same neighbor AS"
    (route ~path:[ 7; 1 ] ~med:(Some 10) ())
    (route ~path:[ 7; 2 ] ~med:(Some 20) ~peer:"10.0.0.3" ~bgp_id:"10.0.0.3" ())
    Bgp.Decision.Med true

let med_ignored_across_asns () =
  (* Different neighbor AS: MED must not decide; falls to router id. *)
  let a = route ~path:[ 7; 1 ] ~med:(Some 99) ~bgp_id:"10.0.0.2" () in
  let b = route ~path:[ 8; 1 ] ~med:(Some 1) ~peer:"10.0.0.3" ~bgp_id:"10.0.0.3" () in
  let c, s = Bgp.Decision.compare_routes cfg a b in
  check step_testable "router id decides" Bgp.Decision.Router_id s;
  Alcotest.(check bool) "lower id wins" true (c < 0)

let med_always_compare () =
  let always = { Bgp.Decision.always_compare_med = true } in
  let a = route ~path:[ 7; 1 ] ~med:(Some 99) () in
  let b = route ~path:[ 8; 1 ] ~med:(Some 1) ~peer:"10.0.0.3" ~bgp_id:"10.0.0.3" () in
  let c, s = Bgp.Decision.compare_routes always a b in
  check step_testable "med decides" Bgp.Decision.Med s;
  Alcotest.(check bool) "lower med wins" true (c > 0)

let missing_med_is_zero () =
  expect_step "absent MED beats 10"
    (route ~path:[ 7; 1 ] ~med:None ())
    (route ~path:[ 7; 2 ] ~med:(Some 10) ~peer:"10.0.0.3" ~bgp_id:"10.0.0.3" ())
    Bgp.Decision.Med true

let ebgp_over_ibgp () =
  expect_step "eBGP wins"
    (route ~ebgp:true ())
    (route ~ebgp:false ~peer:"10.0.0.3" ~bgp_id:"10.0.0.3" ())
    Bgp.Decision.Ebgp_over_ibgp true

let igp_metric_breaks () =
  expect_step "nearer next hop"
    (route ~ebgp:false ~igp_metric:5 ())
    (route ~ebgp:false ~igp_metric:9 ~peer:"10.0.0.3" ~bgp_id:"10.0.0.3" ())
    Bgp.Decision.Igp_metric true

let full_equality () =
  let a = route () in
  let c, s = Bgp.Decision.compare_routes cfg a a in
  check step_testable "equal" Bgp.Decision.Equal s;
  check Alcotest.int "zero" 0 c

let best_picks_overall () =
  let worst = route ~lp:(Some 50) ~path:[ 1 ] () in
  let middle = route ~lp:(Some 100) ~path:[ 1; 2 ] ~peer:"10.0.0.3" ~bgp_id:"10.0.0.3" () in
  let best = route ~lp:(Some 100) ~path:[ 9 ] ~peer:"10.0.0.4" ~bgp_id:"10.0.0.4" () in
  match Bgp.Decision.best cfg [ worst; middle; best ] with
  | Some r -> Alcotest.(check bool) "best chosen" true (r = best)
  | None -> Alcotest.fail "non-empty"

let acceptable_rejects_loops () =
  Alcotest.(check bool) "own AS in path" false
    (Bgp.Decision.acceptable ~local_as:65002 (route ~path:[ 7; 65002 ] ()));
  Alcotest.(check bool) "clean path ok" true
    (Bgp.Decision.acceptable ~local_as:65001 (route ~path:[ 7; 65002 ] ()))

let acceptable_rejects_martian_next_hop () =
  let r = route ~peer:"127.0.0.1" () in
  Alcotest.(check bool) "martian next hop" false (Bgp.Decision.acceptable ~local_as:1 r)

let suite =
  [ ("decision: local routes win outright", `Quick, local_route_wins);
    ("decision: local-pref first", `Quick, local_pref_wins);
    ("decision: as-path length", `Quick, path_length);
    ("decision: AS_SET counts one", `Quick, as_set_counts_one);
    ("decision: origin order", `Quick, origin_preference);
    ("decision: MED same neighbor", `Quick, med_same_neighbor);
    ("decision: MED ignored across ASes", `Quick, med_ignored_across_asns);
    ("decision: always-compare-med", `Quick, med_always_compare);
    ("decision: missing MED is zero", `Quick, missing_med_is_zero);
    ("decision: eBGP over iBGP", `Quick, ebgp_over_ibgp);
    ("decision: IGP metric", `Quick, igp_metric_breaks);
    ("decision: full equality", `Quick, full_equality);
    ("decision: best over candidates", `Quick, best_picks_overall);
    ("decision: loop rejection", `Quick, acceptable_rejects_loops);
    ("decision: martian next hop", `Quick, acceptable_rejects_martian_next_hop) ]
