(* Routing information bases: per-peer tables, candidates, persistence. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let addr s = Bgp.Ipv4.of_string_exn s
let p = Bgp.Prefix.of_string_exn

let route peer path =
  { Bgp.Rib.attrs =
      Bgp.Attr.make ~origin:Bgp.Attr.Igp
        ~as_path:[ Bgp.As_path.Seq path ]
        ~next_hop:(addr peer) ();
    source =
      { Bgp.Rib.peer_addr = addr peer; peer_as = List.hd path;
        peer_bgp_id = addr peer; ebgp = true; igp_metric = 0 } }

let adj_in_roundtrip () =
  let rib = Bgp.Rib.empty in
  let r1 = route "10.0.0.2" [ 65002 ] in
  let rib = Bgp.Rib.adj_in_set (addr "10.0.0.2") (p "192.0.2.0/24") r1 rib in
  check (Alcotest.option Alcotest.reject) "absent for other peer" None
    (Option.map ignore (Bgp.Rib.adj_in_get (addr "10.0.0.3") (p "192.0.2.0/24") rib));
  Alcotest.(check bool) "present for the right peer" true
    (Bgp.Rib.adj_in_get (addr "10.0.0.2") (p "192.0.2.0/24") rib = Some r1);
  let rib = Bgp.Rib.adj_in_del (addr "10.0.0.2") (p "192.0.2.0/24") rib in
  check (Alcotest.option Alcotest.reject) "deleted" None
    (Option.map ignore (Bgp.Rib.adj_in_get (addr "10.0.0.2") (p "192.0.2.0/24") rib));
  check Alcotest.int "empty after delete" 0 (Bgp.Rib.total_adj_in rib)

let candidates_across_peers () =
  let rib =
    Bgp.Rib.empty
    |> Bgp.Rib.adj_in_set (addr "10.0.0.2") (p "192.0.2.0/24") (route "10.0.0.2" [ 65002 ])
    |> Bgp.Rib.adj_in_set (addr "10.0.0.3") (p "192.0.2.0/24") (route "10.0.0.3" [ 65003 ])
    |> Bgp.Rib.adj_in_set (addr "10.0.0.3") (p "198.51.100.0/24") (route "10.0.0.3" [ 65003 ])
  in
  check Alcotest.int "two candidates" 2
    (List.length (Bgp.Rib.candidates (p "192.0.2.0/24") rib));
  check Alcotest.int "one candidate" 1
    (List.length (Bgp.Rib.candidates (p "198.51.100.0/24") rib));
  check Alcotest.int "total adj-in" 3 (Bgp.Rib.total_adj_in rib)

let drop_peer_flushes_both_directions () =
  let rib =
    Bgp.Rib.empty
    |> Bgp.Rib.adj_in_set (addr "10.0.0.2") (p "192.0.2.0/24") (route "10.0.0.2" [ 65002 ])
    |> Bgp.Rib.adj_out_set (addr "10.0.0.2") (p "198.51.100.0/24")
         (Bgp.Attr.make ~next_hop:(addr "10.0.0.1") ())
    |> Bgp.Rib.adj_out_set (addr "10.0.0.3") (p "198.51.100.0/24")
         (Bgp.Attr.make ~next_hop:(addr "10.0.0.1") ())
  in
  let rib = Bgp.Rib.drop_peer (addr "10.0.0.2") rib in
  check Alcotest.int "adj-in gone" 0 (Bgp.Rib.total_adj_in rib);
  check (Alcotest.option Alcotest.reject) "adj-out gone for that peer" None
    (Option.map ignore (Bgp.Rib.adj_out_get (addr "10.0.0.2") (p "198.51.100.0/24") rib));
  Alcotest.(check bool) "other peer's adj-out kept" true
    (Bgp.Rib.adj_out_get (addr "10.0.0.3") (p "198.51.100.0/24") rib <> None)

let loc_rib_ops () =
  let r = route "10.0.0.2" [ 65002 ] in
  let rib = Bgp.Rib.loc_set (p "192.0.2.0/24") r Bgp.Rib.empty in
  check Alcotest.int "cardinal" 1 (Bgp.Rib.loc_cardinal rib);
  check (Alcotest.list (Alcotest.testable Bgp.Prefix.pp Bgp.Prefix.equal)) "prefixes"
    [ p "192.0.2.0/24" ] (Bgp.Rib.loc_prefixes rib);
  let rib = Bgp.Rib.loc_del (p "192.0.2.0/24") rib in
  check Alcotest.int "deleted" 0 (Bgp.Rib.loc_cardinal rib)

let prefixes_from_peer_sorted () =
  let rib =
    Bgp.Rib.empty
    |> Bgp.Rib.adj_in_set (addr "10.0.0.2") (p "198.51.100.0/24") (route "10.0.0.2" [ 1 ])
    |> Bgp.Rib.adj_in_set (addr "10.0.0.2") (p "192.0.2.0/24") (route "10.0.0.2" [ 1 ])
  in
  check (Alcotest.list Alcotest.string) "in prefix order"
    [ "192.0.2.0/24"; "198.51.100.0/24" ]
    (List.map Bgp.Prefix.to_string (Bgp.Rib.prefixes_from_peer (addr "10.0.0.2") rib))

let persistence () =
  let rib1 =
    Bgp.Rib.adj_in_set (addr "10.0.0.2") (p "192.0.2.0/24") (route "10.0.0.2" [ 1 ])
      Bgp.Rib.empty
  in
  let rib2 = Bgp.Rib.drop_peer (addr "10.0.0.2") rib1 in
  check Alcotest.int "old value untouched" 1 (Bgp.Rib.total_adj_in rib1);
  check Alcotest.int "new value empty" 0 (Bgp.Rib.total_adj_in rib2)

let local_route_detection () =
  let local =
    { Bgp.Rib.attrs = Bgp.Attr.make ~next_hop:(addr "10.0.0.1") ();
      source = Bgp.Rib.local_source }
  in
  Alcotest.(check bool) "local" true (Bgp.Rib.is_local local);
  Alcotest.(check bool) "learned is not local" false
    (Bgp.Rib.is_local (route "10.0.0.2" [ 1 ]))

(* Model-based: a random sequence of adj-in set/del operations behaves
   like an association list keyed by (peer, prefix). *)
let arb_ops =
  let open QCheck.Gen in
  let peer = oneofl [ "10.0.0.2"; "10.0.0.3"; "10.0.0.4" ] in
  let prefix = oneofl [ "192.0.2.0/24"; "198.51.100.0/24"; "203.0.113.0/24" ] in
  let op =
    let* pe = peer in
    let* pr = prefix in
    let* set = bool in
    return (pe, pr, set)
  in
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map (fun (pe, pr, s) -> Printf.sprintf "%s %s %s" (if s then "set" else "del") pe pr) ops))
    (list_size (int_bound 40) op)

let adj_in_model =
  QCheck.Test.make ~name:"rib: adj-in behaves like an association list" ~count:300
    arb_ops
    (fun ops ->
      let rib, model =
        List.fold_left
          (fun (rib, model) (pe, pr, set) ->
            let peer = addr pe and prefix = p pr in
            if set then
              let r = route pe [ 65000 ] in
              ( Bgp.Rib.adj_in_set peer prefix r rib,
                ((pe, pr), r) :: List.remove_assoc (pe, pr) model )
            else
              (Bgp.Rib.adj_in_del peer prefix rib, List.remove_assoc (pe, pr) model))
          (Bgp.Rib.empty, []) ops
      in
      List.for_all
        (fun pe ->
          List.for_all
            (fun pr ->
              Bgp.Rib.adj_in_get (addr pe) (p pr) rib = List.assoc_opt (pe, pr) model)
            [ "192.0.2.0/24"; "198.51.100.0/24"; "203.0.113.0/24" ])
        [ "10.0.0.2"; "10.0.0.3"; "10.0.0.4" ]
      && Bgp.Rib.total_adj_in rib = List.length model)

let suite =
  [ ("rib: adj-in roundtrip", `Quick, adj_in_roundtrip);
    ("rib: candidates across peers", `Quick, candidates_across_peers);
    ("rib: drop peer flushes", `Quick, drop_peer_flushes_both_directions);
    ("rib: loc-rib operations", `Quick, loc_rib_ops);
    ("rib: per-peer prefixes sorted", `Quick, prefixes_from_peer_sorted);
    ("rib: persistence", `Quick, persistence);
    ("rib: local route detection", `Quick, local_route_detection);
    qtest adj_in_model ]
