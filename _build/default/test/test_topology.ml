(* Topology graphs, Gao-Rexford policies, generation, rendering. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* Inline helper module to build one fixed graph. *)
module Graph_helpers = struct
  let make () =
    Topology.Graph.make
      ~nodes:
        [ (0, Topology.Graph.Tier1); (1, Topology.Graph.Transit);
          (2, Topology.Graph.Transit); (3, Topology.Graph.Stub) ]
      ~edges:
        [ { Topology.Graph.a = 1; b = 0; rel = Topology.Graph.Customer_provider };
          { Topology.Graph.a = 2; b = 0; rel = Topology.Graph.Customer_provider };
          { Topology.Graph.a = 1; b = 2; rel = Topology.Graph.Peer_peer };
          { Topology.Graph.a = 3; b = 1; rel = Topology.Graph.Customer_provider } ]
end

let graph_roles () =
  let g = Graph_helpers.make () in
  check (Alcotest.list Alcotest.int) "providers of 1" [ 0 ] (Topology.Graph.providers_of g 1);
  check (Alcotest.list Alcotest.int) "customers of 1" [ 3 ] (Topology.Graph.customers_of g 1);
  check (Alcotest.list Alcotest.int) "peers of 1" [ 2 ] (Topology.Graph.peers_of g 1);
  check (Alcotest.list Alcotest.int) "neighbors of 1" [ 0; 2; 3 ] (Topology.Graph.neighbors g 1);
  let role_testable =
    Alcotest.testable
      (fun ppf r -> Format.pp_print_string ppf (Topology.Graph.role_to_string r))
      ( = )
  in
  check (Alcotest.option role_testable) "0 is provider of 1" (Some Topology.Graph.Provider)
    (Topology.Graph.role_of g ~self:1 ~neighbor:0);
  check (Alcotest.option role_testable) "3 is customer of 1" (Some Topology.Graph.Customer)
    (Topology.Graph.role_of g ~self:1 ~neighbor:3);
  check (Alcotest.option role_testable) "2 is peer of 1" (Some Topology.Graph.Peer)
    (Topology.Graph.role_of g ~self:1 ~neighbor:2);
  check (Alcotest.option role_testable) "no edge" None
    (Topology.Graph.role_of g ~self:3 ~neighbor:0)

let graph_validation () =
  Alcotest.check_raises "self loop"
    (Invalid_argument "Graph.make: self-loop at 0")
    (fun () ->
      ignore
        (Topology.Graph.make
           ~nodes:[ (0, Topology.Graph.Stub) ]
           ~edges:[ { Topology.Graph.a = 0; b = 0; rel = Topology.Graph.Peer_peer } ]));
  Alcotest.check_raises "duplicate edge"
    (Invalid_argument "Graph.make: duplicate edge 1-0")
    (fun () ->
      ignore
        (Topology.Graph.make
           ~nodes:[ (0, Topology.Graph.Stub); (1, Topology.Graph.Stub) ]
           ~edges:
             [ { Topology.Graph.a = 0; b = 1; rel = Topology.Graph.Peer_peer };
               { Topology.Graph.a = 1; b = 0; rel = Topology.Graph.Peer_peer } ]))

let valley_free_check () =
  let g = Graph_helpers.make () in
  (* 3 -> 1 -> 0: pure climb: valley-free *)
  Alcotest.(check bool) "climb ok" true (Topology.Gao_rexford.valley_free g [ 3; 1; 0 ]);
  (* 0 -> 1 -> 3: pure descent *)
  Alcotest.(check bool) "descent ok" true (Topology.Gao_rexford.valley_free g [ 0; 1; 3 ]);
  (* 3 -> 1 -> 2: climb then peer: ok *)
  Alcotest.(check bool) "peer at apex ok" true (Topology.Gao_rexford.valley_free g [ 3; 1; 2 ]);
  (* 0 -> 1 -> 2: descend to 1 then peer 2: a valley *)
  Alcotest.(check bool) "descend-then-peer rejected" false
    (Topology.Gao_rexford.valley_free g [ 0; 1; 2 ]);
  (* 0 -> 2 -> 1 -> 3 : descend, peer, descend -> rejected *)
  Alcotest.(check bool) "peer mid-descent rejected" false
    (Topology.Gao_rexford.valley_free g [ 0; 2; 1; 3 ])

let demo27_shape () =
  let g = Topology.Demo27.graph in
  check Alcotest.int "27 nodes" 27 (Topology.Graph.size g);
  Alcotest.(check bool) "connected" true (Topology.Graph.is_connected g);
  check Alcotest.int "three tier-1" 3 (List.length Topology.Demo27.tier1);
  check Alcotest.int "eight transit" 8 (List.length Topology.Demo27.transit);
  check Alcotest.int "sixteen stubs" 16 (List.length Topology.Demo27.stubs);
  (* tier-1 full mesh of peers *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a < b then
            match Topology.Graph.role_of g ~self:a ~neighbor:b with
            | Some Topology.Graph.Peer -> ()
            | _ -> Alcotest.failf "tier-1 %d-%d must peer" a b)
        Topology.Demo27.tier1)
    Topology.Demo27.tier1;
  (* every non-tier-1 has a provider *)
  List.iter
    (fun id ->
      if not (List.mem id Topology.Demo27.tier1) then
        Alcotest.(check bool)
          (Printf.sprintf "node %d has a provider" id)
          true
          (Topology.Graph.providers_of g id <> []))
    (Topology.Graph.node_ids g)

let generator_invariants =
  QCheck.Test.make ~name:"generate: connected, providers everywhere" ~count:30
    QCheck.(pair small_int (pair (int_range 1 4) (pair (int_range 0 8) (int_range 0 12))))
    (fun (seed, (t1, (tr, st))) ->
      let params =
        { Topology.Generate.default_params with n_tier1 = t1; n_transit = tr; n_stub = st }
      in
      let g = Topology.Generate.generate ~params (Netsim.Rng.create seed) in
      Topology.Graph.size g = t1 + tr + st
      && Topology.Graph.is_connected g
      && List.for_all
           (fun id ->
             Topology.Graph.tier_of g id = Topology.Graph.Tier1
             || Topology.Graph.providers_of g id <> [])
           (Topology.Graph.node_ids g))

let asn_prefix_mapping () =
  check Alcotest.int "asn roundtrip" 13
    (Topology.Gao_rexford.node_of_asn (Topology.Gao_rexford.asn_of_node 13));
  check Alcotest.string "prefix of node 300" "192.1.44.0/24"
    (Bgp.Prefix.to_string (Topology.Gao_rexford.prefix_of_node 300))

let render_outputs () =
  let g = Graph_helpers.make () in
  let dot = Topology.Render.dot g in
  Alcotest.(check bool) "dot has graph header" true
    (String.length dot > 0 && String.sub dot 0 5 = "graph");
  let ascii =
    Topology.Render.ascii
      ~annotations:[ (1, { Topology.Render.label = "exploring"; highlight = true }) ]
      g
  in
  Alcotest.(check bool) "ascii mentions annotation" true
    (let rec has i =
       i + 9 <= String.length ascii && (String.sub ascii i 9 = "exploring" || has (i + 1))
     in
     has 0)

let gadget_shapes () =
  let g = Topology.Gadget.bad_gadget () in
  check Alcotest.int "4 nodes" 4 (Topology.Graph.size g);
  List.iter
    (fun w ->
      check (Alcotest.list Alcotest.int)
        (Printf.sprintf "victim is customer of %d" w)
        [ Topology.Gadget.victim ]
        (Topology.Graph.customers_of g w
        |> List.filter (fun c -> c = Topology.Gadget.victim)))
    Topology.Gadget.wheel;
  Alcotest.(check bool) "embedded connected" true
    (Topology.Graph.is_connected (Topology.Gadget.embedded ()))

let deployment_converges () =
  let g = Graph_helpers.make () in
  let build = Topology.Build.deploy g in
  Topology.Build.start_all build;
  Alcotest.(check bool) "converges" true (Topology.Build.converge build);
  check Alcotest.int "full reachability" 16 (Topology.Build.total_loc_routes build);
  check Alcotest.int "all sessions up" 8 (Topology.Build.established_sessions build)

let valley_free_selected_paths () =
  (* After convergence under Gao-Rexford policies, every selected AS
     path corresponds to a valley-free node path. *)
  let g = Topology.Gadget.embedded () in
  let build = Topology.Build.deploy g in
  Topology.Build.start_all build;
  Alcotest.(check bool) "converges" true (Topology.Build.converge build);
  List.iter
    (fun (id, sp) ->
      Bgp.Prefix.Map.iter
        (fun _ (route : Bgp.Rib.route) ->
          let nodes =
            id
            :: List.map Topology.Gao_rexford.node_of_asn
                 (Bgp.As_path.as_list route.Bgp.Rib.attrs.Bgp.Attr.as_path)
          in
          if not (Topology.Gao_rexford.valley_free g nodes) then
            Alcotest.failf "node %d selected a valley path [%s]" id
              (String.concat ";" (List.map string_of_int nodes)))
        (Bgp.Speaker.loc_rib sp))
    build.Topology.Build.speakers

let topo_file_roundtrip () =
  List.iter
    (fun g ->
      let g2 = Topology.Topo_file.parse_exn (Topology.Topo_file.render g) in
      if g <> g2 then Alcotest.fail "render/parse must be a fixpoint")
    [ Graph_helpers.make (); Topology.Demo27.graph; Topology.Gadget.embedded () ]

let topo_file_errors () =
  let expect_error text =
    match Topology.Topo_file.parse text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected parse error for %S" text
  in
  expect_error "node 0 mega\n";
  expect_error "edge 0 1 friend\n";
  expect_error "nonsense\n";
  expect_error "node 0 stub\nnode 0 stub\n";
  (* duplicate node *)
  expect_error "node 0 stub\nnode 1 stub\nedge 0 1 peer\nedge 1 0 peer\n"

let topo_file_parse () =
  let g =
    Topology.Topo_file.parse_exn
      "# demo\nnode 0 tier1\nnode 1 transit\nnode 2 stub\nedge 1 0 customer\nedge 2 1 customer\n"
  in
  check Alcotest.int "three nodes" 3 (Topology.Graph.size g);
  check (Alcotest.list Alcotest.int) "1 buys from 0" [ 0 ]
    (Topology.Graph.providers_of g 1)

let suite =
  [ ("graph: roles and adjacency", `Quick, graph_roles);
    ("topo-file: roundtrip", `Quick, topo_file_roundtrip);
    ("topo-file: error reporting", `Quick, topo_file_errors);
    ("topo-file: parse", `Quick, topo_file_parse);
    ("graph: validation", `Quick, graph_validation);
    ("gao-rexford: valley-free predicate", `Quick, valley_free_check);
    ("demo27: shape", `Quick, demo27_shape);
    qtest generator_invariants;
    ("gao-rexford: asn/prefix mapping", `Quick, asn_prefix_mapping);
    ("render: dot and ascii", `Quick, render_outputs);
    ("gadget: shapes", `Quick, gadget_shapes);
    ("build: small deployment converges", `Quick, deployment_converges);
    ("build: selected paths are valley-free", `Slow, valley_free_selected_paths) ]
