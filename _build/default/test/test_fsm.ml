(* Session FSM transition relation. *)

let check = Alcotest.check

let state_testable =
  Alcotest.testable Bgp.Fsm.pp_state ( = )

let cfg : Bgp.Fsm.config =
  { my_as = 65001; bgp_id = Bgp.Ipv4.of_string_exn "10.0.0.1"; hold_time = 90;
    peer_as = 65002 }

let peer_open ?(asn = 65002) ?(hold = 30) () =
  Bgp.Msg.Open
    { version = 4; my_as = asn; hold_time = hold;
      bgp_id = Bgp.Ipv4.of_string_exn "10.0.0.2" }

let step st ev = Bgp.Fsm.handle cfg st ev

let has_send_open actions =
  List.exists (function Bgp.Fsm.Send (Bgp.Msg.Open _) -> true | _ -> false) actions

let has_send_keepalive actions =
  List.exists (function Bgp.Fsm.Send Bgp.Msg.Keepalive -> true | _ -> false) actions

let has_notification ~code actions =
  List.exists
    (function
      | Bgp.Fsm.Send (Bgp.Msg.Notification n) -> n.Bgp.Msg.code = code
      | _ -> false)
    actions

let happy_path () =
  let st = Bgp.Fsm.create () in
  check state_testable "starts Idle" Bgp.Fsm.Idle st.Bgp.Fsm.state;
  let st, acts = step st Bgp.Fsm.Manual_start in
  check state_testable "Connect" Bgp.Fsm.Connect st.Bgp.Fsm.state;
  Alcotest.(check bool) "starts transport" true (List.mem Bgp.Fsm.Start_connect acts);
  let st, acts = step st Bgp.Fsm.Tcp_established in
  check state_testable "OpenSent" Bgp.Fsm.OpenSent st.Bgp.Fsm.state;
  Alcotest.(check bool) "sends OPEN" true (has_send_open acts);
  let st, acts = step st (Bgp.Fsm.Msg_received (peer_open ())) in
  check state_testable "OpenConfirm" Bgp.Fsm.OpenConfirm st.Bgp.Fsm.state;
  Alcotest.(check bool) "acks with KEEPALIVE" true (has_send_keepalive acts);
  check Alcotest.int "negotiated hold = min" 30 st.Bgp.Fsm.negotiated_hold;
  let st, acts = step st (Bgp.Fsm.Msg_received Bgp.Msg.Keepalive) in
  check state_testable "Established" Bgp.Fsm.Established st.Bgp.Fsm.state;
  Alcotest.(check bool) "announces session up" true (List.mem Bgp.Fsm.Session_up acts)

let wrong_peer_as () =
  let st = Bgp.Fsm.create () in
  let st, _ = step st Bgp.Fsm.Manual_start in
  let st, _ = step st Bgp.Fsm.Tcp_established in
  let st, acts = step st (Bgp.Fsm.Msg_received (peer_open ~asn:65099 ())) in
  check state_testable "back to Idle" Bgp.Fsm.Idle st.Bgp.Fsm.state;
  Alcotest.(check bool) "OPEN error notification" true
    (has_notification ~code:Bgp.Msg.Error.open_message acts);
  Alcotest.(check bool) "session down" true
    (List.exists (function Bgp.Fsm.Session_down _ -> true | _ -> false) acts)

let established_update_delivery () =
  let st =
    { Bgp.Fsm.state = Bgp.Fsm.Established; peer_bgp_id = None; negotiated_hold = 30 }
  in
  let u = { Bgp.Msg.withdrawn = []; attrs = None; nlri = [] } in
  let st', acts = step st (Bgp.Fsm.Msg_received (Bgp.Msg.Update u)) in
  check state_testable "stays Established" Bgp.Fsm.Established st'.Bgp.Fsm.state;
  Alcotest.(check bool) "delivers update" true
    (List.exists (function Bgp.Fsm.Deliver_update _ -> true | _ -> false) acts)

let hold_timer_drops_session () =
  let st =
    { Bgp.Fsm.state = Bgp.Fsm.Established; peer_bgp_id = None; negotiated_hold = 30 }
  in
  let st', acts = step st Bgp.Fsm.Hold_timer_expired in
  check state_testable "Idle" Bgp.Fsm.Idle st'.Bgp.Fsm.state;
  Alcotest.(check bool) "hold-timer notification" true
    (has_notification ~code:Bgp.Msg.Error.hold_timer_expired acts)

let open_in_established_is_fsm_error () =
  let st =
    { Bgp.Fsm.state = Bgp.Fsm.Established; peer_bgp_id = None; negotiated_hold = 30 }
  in
  let st', acts = step st (Bgp.Fsm.Msg_received (peer_open ())) in
  check state_testable "Idle" Bgp.Fsm.Idle st'.Bgp.Fsm.state;
  Alcotest.(check bool) "FSM error" true
    (has_notification ~code:Bgp.Msg.Error.fsm_error acts)

let update_in_opensent_is_fsm_error () =
  let st = Bgp.Fsm.create () in
  let st, _ = step st Bgp.Fsm.Manual_start in
  let st, _ = step st Bgp.Fsm.Tcp_established in
  let st, acts =
    step st (Bgp.Fsm.Msg_received (Bgp.Msg.update ()))
  in
  check state_testable "Idle" Bgp.Fsm.Idle st.Bgp.Fsm.state;
  Alcotest.(check bool) "FSM error" true (has_notification ~code:Bgp.Msg.Error.fsm_error acts)

let manual_stop_sends_cease () =
  let st =
    { Bgp.Fsm.state = Bgp.Fsm.Established; peer_bgp_id = None; negotiated_hold = 30 }
  in
  let st', acts = step st Bgp.Fsm.Manual_stop in
  check state_testable "Idle" Bgp.Fsm.Idle st'.Bgp.Fsm.state;
  Alcotest.(check bool) "cease" true (has_notification ~code:Bgp.Msg.Error.cease acts)

let notification_tears_down () =
  let st =
    { Bgp.Fsm.state = Bgp.Fsm.Established; peer_bgp_id = None; negotiated_hold = 30 }
  in
  let st', acts =
    step st (Bgp.Fsm.Msg_received (Bgp.Msg.Notification { code = 6; subcode = 0; data = "" }))
  in
  check state_testable "Idle" Bgp.Fsm.Idle st'.Bgp.Fsm.state;
  Alcotest.(check bool) "session down, no notification echoed" true
    (List.for_all (function Bgp.Fsm.Send _ -> false | _ -> true) acts)

let connect_retry_cycle () =
  let st = Bgp.Fsm.create () in
  let st, _ = step st Bgp.Fsm.Manual_start in
  let st, _ = step st Bgp.Fsm.Tcp_failed in
  check state_testable "Active after failure" Bgp.Fsm.Active st.Bgp.Fsm.state;
  let st, acts = step st Bgp.Fsm.Connect_retry_expired in
  check state_testable "retries Connect" Bgp.Fsm.Connect st.Bgp.Fsm.state;
  Alcotest.(check bool) "starts transport again" true (List.mem Bgp.Fsm.Start_connect acts)

let keepalive_interval () =
  let st =
    { Bgp.Fsm.state = Bgp.Fsm.Established; peer_bgp_id = None; negotiated_hold = 90 }
  in
  check Alcotest.int "hold/3" 30 (Bgp.Fsm.keepalive_interval st);
  let st0 = { st with Bgp.Fsm.negotiated_hold = 0 } in
  check Alcotest.int "disabled" 0 (Bgp.Fsm.keepalive_interval st0)

let idle_ignores_messages () =
  let st = Bgp.Fsm.create () in
  let st', acts = step st (Bgp.Fsm.Msg_received Bgp.Msg.Keepalive) in
  check state_testable "still Idle" Bgp.Fsm.Idle st'.Bgp.Fsm.state;
  check Alcotest.int "no actions" 0 (List.length acts)

let suite =
  [ ("fsm: happy path to Established", `Quick, happy_path);
    ("fsm: wrong peer AS rejected", `Quick, wrong_peer_as);
    ("fsm: update delivery", `Quick, established_update_delivery);
    ("fsm: hold timer expiry", `Quick, hold_timer_drops_session);
    ("fsm: OPEN in Established", `Quick, open_in_established_is_fsm_error);
    ("fsm: UPDATE in OpenSent", `Quick, update_in_opensent_is_fsm_error);
    ("fsm: manual stop sends cease", `Quick, manual_stop_sends_cease);
    ("fsm: notification tears down", `Quick, notification_tears_down);
    ("fsm: connect retry cycle", `Quick, connect_retry_cycle);
    ("fsm: keepalive interval", `Quick, keepalive_interval);
    ("fsm: Idle ignores messages", `Quick, idle_ignores_messages) ]
