(* IPv4 addresses, CIDR prefixes, and the radix trie. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let ipv4_parse () =
  check Alcotest.string "roundtrip" "192.168.1.42"
    (Bgp.Ipv4.to_string (Bgp.Ipv4.of_string_exn "192.168.1.42"));
  Alcotest.(check bool) "rejects 256" true
    (Result.is_error (Bgp.Ipv4.of_string "1.2.3.256"));
  Alcotest.(check bool) "rejects short" true (Result.is_error (Bgp.Ipv4.of_string "1.2.3"));
  Alcotest.(check bool) "rejects junk" true
    (Result.is_error (Bgp.Ipv4.of_string "1.2.3.4x"))

let ipv4_bits () =
  let a = Bgp.Ipv4.of_string_exn "128.0.0.1" in
  Alcotest.(check bool) "bit 0 set" true (Bgp.Ipv4.bit a 0);
  Alcotest.(check bool) "bit 1 clear" false (Bgp.Ipv4.bit a 1);
  Alcotest.(check bool) "bit 31 set" true (Bgp.Ipv4.bit a 31)

let ipv4_martians () =
  List.iter
    (fun (s, expect) ->
      Alcotest.(check bool) s expect (Bgp.Ipv4.is_martian (Bgp.Ipv4.of_string_exn s)))
    [ ("127.0.0.1", true); ("0.1.2.3", true); ("240.0.0.1", true);
      ("255.255.255.255", true); ("8.8.8.8", false); ("192.0.2.1", false) ]

let prefix_canonical () =
  let p = Bgp.Prefix.make (Bgp.Ipv4.of_string_exn "10.1.2.3") 8 in
  check Alcotest.string "host bits zeroed" "10.0.0.0/8" (Bgp.Prefix.to_string p);
  Alcotest.(check bool) "parse rejects non-canonical" true
    (Result.is_error (Bgp.Prefix.of_string "10.1.0.0/8"));
  check Alcotest.string "parse canonical" "10.0.0.0/8"
    (Bgp.Prefix.to_string (Bgp.Prefix.of_string_exn "10.0.0.0/8"))

let prefix_mem_subsumes () =
  let p8 = Bgp.Prefix.of_string_exn "10.0.0.0/8" in
  let p16 = Bgp.Prefix.of_string_exn "10.5.0.0/16" in
  let other = Bgp.Prefix.of_string_exn "11.0.0.0/16" in
  Alcotest.(check bool) "mem inside" true (Bgp.Prefix.mem (Bgp.Ipv4.of_string_exn "10.9.9.9") p8);
  Alcotest.(check bool) "mem outside" false (Bgp.Prefix.mem (Bgp.Ipv4.of_string_exn "11.0.0.1") p8);
  Alcotest.(check bool) "subsumes more specific" true (Bgp.Prefix.subsumes p8 p16);
  Alcotest.(check bool) "not reverse" false (Bgp.Prefix.subsumes p16 p8);
  Alcotest.(check bool) "disjoint" false (Bgp.Prefix.subsumes p8 other);
  Alcotest.(check bool) "self" true (Bgp.Prefix.subsumes p8 p8)

let prefix_split () =
  let p = Bgp.Prefix.of_string_exn "10.0.0.0/8" in
  match Bgp.Prefix.split p with
  | Some (lo, hi) ->
      check Alcotest.string "low half" "10.0.0.0/9" (Bgp.Prefix.to_string lo);
      check Alcotest.string "high half" "10.128.0.0/9" (Bgp.Prefix.to_string hi)
  | None -> Alcotest.fail "split /8 must succeed"

let prefix_gen =
  QCheck.Gen.(
    map2
      (fun addr len -> Bgp.Prefix.make (Bgp.Ipv4.of_int32_exn addr) len)
      (map (fun x -> abs x land 0xFFFF_FFFF) int)
      (int_bound 32))

let arb_prefix = QCheck.make ~print:Bgp.Prefix.to_string prefix_gen

let prefix_subsume_mem =
  QCheck.Test.make ~name:"prefix: subsumption agrees with membership" ~count:500
    (QCheck.pair arb_prefix arb_prefix)
    (fun (p, q) ->
      (* p subsumes q iff q's base address is in p and q is at least as long *)
      Bgp.Prefix.subsumes p q
      = (Bgp.Prefix.len q >= Bgp.Prefix.len p && Bgp.Prefix.mem (Bgp.Prefix.addr q) p))

(* --- trie vs a reference association list --- *)

let trie_basics () =
  let open Bgp.Prefix_trie in
  let p s = Bgp.Prefix.of_string_exn s in
  let t =
    empty
    |> add (p "10.0.0.0/8") "eight"
    |> add (p "10.5.0.0/16") "sixteen"
    |> add (p "0.0.0.0/0") "default"
  in
  check Alcotest.int "cardinal" 3 (cardinal t);
  check (Alcotest.option Alcotest.string) "exact" (Some "sixteen") (find (p "10.5.0.0/16") t);
  check (Alcotest.option Alcotest.string) "exact miss" None (find (p "10.5.0.0/24") t);
  (match longest_match (Bgp.Ipv4.of_string_exn "10.5.1.1") t with
  | Some (pre, v) ->
      check Alcotest.string "lpm value" "sixteen" v;
      check Alcotest.string "lpm prefix" "10.5.0.0/16" (Bgp.Prefix.to_string pre)
  | None -> Alcotest.fail "lpm must hit");
  (match longest_match (Bgp.Ipv4.of_string_exn "11.1.1.1") t with
  | Some (_, v) -> check Alcotest.string "falls to default" "default" v
  | None -> Alcotest.fail "default must match");
  let t = remove (p "10.5.0.0/16") t in
  (match longest_match (Bgp.Ipv4.of_string_exn "10.5.1.1") t with
  | Some (_, v) -> check Alcotest.string "after removal" "eight" v
  | None -> Alcotest.fail "must still match /8");
  check Alcotest.int "covered count" 2
    (List.length (covered (p "0.0.0.0/0") t))

let trie_model =
  QCheck.Test.make ~name:"trie: behaves like an association list" ~count:300
    (QCheck.list (QCheck.pair arb_prefix QCheck.small_int))
    (fun bindings ->
      let t = Bgp.Prefix_trie.of_list bindings in
      (* Reference: last binding per prefix wins. *)
      let ref_find p =
        List.fold_left
          (fun acc (q, v) -> if Bgp.Prefix.equal p q then Some v else acc)
          None bindings
      in
      List.for_all
        (fun (p, _) -> Bgp.Prefix_trie.find p t = ref_find p)
        bindings)

let trie_lpm_model =
  QCheck.Test.make ~name:"trie: longest match equals naive scan" ~count:300
    (QCheck.pair
       (QCheck.list (QCheck.pair arb_prefix QCheck.small_int))
       (QCheck.map (fun x -> Bgp.Ipv4.of_int32_exn (abs x land 0xFFFF_FFFF)) QCheck.int))
    (fun (bindings, addr) ->
      (* Dedup so "last wins" cannot differ between trie and scan. *)
      let bindings =
        List.fold_left
          (fun acc (p, v) ->
            if List.exists (fun (q, _) -> Bgp.Prefix.equal p q) acc then acc
            else (p, v) :: acc)
          [] bindings
      in
      let t = Bgp.Prefix_trie.of_list bindings in
      let naive =
        List.fold_left
          (fun acc (p, v) ->
            if Bgp.Prefix.mem addr p then
              match acc with
              | Some (q, _) when Bgp.Prefix.len q >= Bgp.Prefix.len p -> acc
              | _ -> Some (p, v)
            else acc)
          None bindings
      in
      match (Bgp.Prefix_trie.longest_match addr t, naive) with
      | None, None -> true
      | Some (p, v), Some (q, w) -> Bgp.Prefix.equal p q && v = w
      | Some _, None | None, Some _ -> false)

let trie_persistent () =
  let p s = Bgp.Prefix.of_string_exn s in
  let t1 = Bgp.Prefix_trie.(empty |> add (p "10.0.0.0/8") 1) in
  let t2 = Bgp.Prefix_trie.add (p "11.0.0.0/8") 2 t1 in
  check Alcotest.int "original untouched" 1 (Bgp.Prefix_trie.cardinal t1);
  check Alcotest.int "new has both" 2 (Bgp.Prefix_trie.cardinal t2)

let suite =
  [ ("ipv4: parse/print", `Quick, ipv4_parse);
    ("ipv4: bit indexing", `Quick, ipv4_bits);
    ("ipv4: martians", `Quick, ipv4_martians);
    ("prefix: canonicalization", `Quick, prefix_canonical);
    ("prefix: mem and subsumes", `Quick, prefix_mem_subsumes);
    ("prefix: split", `Quick, prefix_split);
    qtest prefix_subsume_mem;
    ("trie: basics", `Quick, trie_basics);
    qtest trie_model;
    qtest trie_lpm_model;
    ("trie: persistence", `Quick, trie_persistent) ]
