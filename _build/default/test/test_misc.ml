(* Edge cases across smaller APIs: grammar combinators, stats
   merging, trace querying, network error handling, engine stop. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- Grammar combinators --- *)

let grammar_map_bind () =
  let rng = Netsim.Rng.create 9 in
  let g =
    Concolic.Grammar.bind (Concolic.Grammar.pure 20) (fun n ->
        Concolic.Grammar.map (fun x -> x + n) (Concolic.Grammar.range 1 5))
  in
  for _ = 1 to 50 do
    let v = Concolic.Grammar.run g rng in
    Alcotest.(check bool) "21..25" true (v >= 21 && v <= 25)
  done

let grammar_both_opt () =
  let rng = Netsim.Rng.create 10 in
  let g = Concolic.Grammar.both (Concolic.Grammar.pure "a") (Concolic.Grammar.range 0 0) in
  check (Alcotest.pair Alcotest.string Alcotest.int) "both" ("a", 0)
    (Concolic.Grammar.run g rng);
  let none_count = ref 0 in
  let some_count = ref 0 in
  for _ = 1 to 200 do
    match Concolic.Grammar.run (Concolic.Grammar.opt 0.5 (Concolic.Grammar.pure ())) rng with
    | Some () -> incr some_count
    | None -> incr none_count
  done;
  Alcotest.(check bool) "opt mixes" true (!none_count > 30 && !some_count > 30)

let grammar_shuffle_permutes =
  QCheck.Test.make ~name:"grammar: shuffle is a permutation" ~count:100
    QCheck.(pair small_int (list small_int))
    (fun (seed, l) ->
      let rng = Netsim.Rng.create seed in
      let shuffled = Concolic.Grammar.run (Concolic.Grammar.shuffle_of l) rng in
      List.sort compare shuffled = List.sort compare l)

let grammar_rejects_empty () =
  Alcotest.check_raises "choose []" (Invalid_argument "Grammar.choose: empty") (fun () ->
      ignore (Concolic.Grammar.choose []));
  Alcotest.check_raises "one_of []" (Invalid_argument "Rng.pick: empty list") (fun () ->
      ignore (Concolic.Grammar.run (Concolic.Grammar.one_of []) (Netsim.Rng.create 1)))

(* --- Stats --- *)

let stats_merge () =
  let a = Netsim.Stats.create () and b = Netsim.Stats.create () in
  Netsim.Stats.add a "x" 3;
  Netsim.Stats.add b "x" 4;
  Netsim.Stats.observe b "d" 1.5;
  Netsim.Stats.merge_into ~dst:a b;
  check Alcotest.int "counters summed" 7 (Netsim.Stats.get a "x");
  check Alcotest.int "samples moved" 1 (Netsim.Stats.count a "d");
  Netsim.Stats.clear a;
  check Alcotest.int "cleared" 0 (Netsim.Stats.get a "x")

let stats_empty_distribution () =
  let s = Netsim.Stats.create () in
  Alcotest.(check bool) "mean of nothing is nan" true (Float.is_nan (Netsim.Stats.mean s "d"));
  check Alcotest.int "count 0" 0 (Netsim.Stats.count s "d")

(* --- Trace --- *)

let trace_find () =
  let tr = Netsim.Trace.create () in
  Netsim.Trace.emit tr ~at:Netsim.Time.zero ~node:1 ~kind:"a" "one";
  Netsim.Trace.emit tr ~at:Netsim.Time.zero ~node:2 ~kind:"b" "two";
  Netsim.Trace.emit tr ~at:Netsim.Time.zero ~node:3 ~kind:"a" "three";
  check Alcotest.int "two of kind a" 2 (List.length (Netsim.Trace.find tr ~kind:"a"));
  Netsim.Trace.clear tr;
  check Alcotest.int "cleared" 0 (Netsim.Trace.length tr)

(* --- Network error handling --- *)

let network_errors () =
  let eng = Netsim.Engine.create () in
  let net = Netsim.Network.create eng in
  Netsim.Network.add_node net 0 (fun ~src:_ _ -> ());
  Alcotest.check_raises "duplicate node"
    (Invalid_argument "Network.add_node: node 0 exists") (fun () ->
      Netsim.Network.add_node net 0 (fun ~src:_ _ -> ()));
  Alcotest.check_raises "send without channel"
    (Invalid_argument "Network.send: no channel 0->1") (fun () ->
      Netsim.Network.send net ~src:0 ~dst:1 "x");
  Alcotest.check_raises "connect to unknown node"
    (Invalid_argument "Network.connect: no node 9") (fun () ->
      Netsim.Network.connect net 0 9 Netsim.Link.ideal)

let engine_stop_mid_run () =
  let eng = Netsim.Engine.create () in
  let count = ref 0 in
  for _ = 1 to 10 do
    ignore
      (Netsim.Engine.schedule eng ~after:100 (fun () ->
           incr count;
           if !count = 3 then Netsim.Engine.stop eng))
  done;
  Netsim.Engine.run eng;
  check Alcotest.int "stopped after third event" 3 !count;
  (* the remaining events are still pending and can run later *)
  Netsim.Engine.run eng;
  check Alcotest.int "resumed" 10 !count

(* --- Speaker wrapper consistency --- *)

let speaker_wraps_router_faithfully () =
  let eng = Netsim.Engine.create () in
  let net = Netsim.Network.create eng in
  Netsim.Network.add_node net 0 (fun ~src:_ _ -> ());
  let cfg =
    Bgp.Config.make ~asn:65001 ~router_id:(Bgp.Router.addr_of_node 0)
      ~networks:[ Bgp.Prefix.of_string_exn "192.0.2.0/24" ]
      ()
  in
  let r = Bgp.Router.create ~net ~node:0 cfg in
  let sp = Bgp.Speaker.of_router r in
  check Alcotest.string "impl" "bird-like" sp.Bgp.Speaker.sp_impl;
  check Alcotest.int "node" 0 sp.Bgp.Speaker.sp_node;
  Alcotest.(check bool) "loc rib matches" true
    (Bgp.Speaker.loc_rib sp = Bgp.Router.loc_rib r);
  Alcotest.(check bool) "config matches" true (sp.Bgp.Speaker.sp_config () = cfg)

(* --- Sym_route universe --- *)

let universe_contents () =
  let graph = Topology.Demo27.graph in
  let cfg = Topology.Gao_rexford.config_of graph 3 in
  let u = Dice.Sym_route.universe cfg Bgp.Router.no_bugs in
  (* the three relationship communities + no-export + no-advertise *)
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Bgp.Community.to_string c ^ " present")
        true
        (List.exists (Bgp.Community.equal c) u))
    [ Topology.Gao_rexford.community_customer; Topology.Gao_rexford.community_peer;
      Topology.Gao_rexford.community_provider; Bgp.Community.no_export;
      Bgp.Community.no_advertise ];
  (* a crash community extends the universe *)
  let poison = Bgp.Community.make 60000 1 in
  let u2 =
    Dice.Sym_route.universe cfg
      { Bgp.Router.no_bugs with Bgp.Router.crash_community = Some poison }
  in
  Alcotest.(check bool) "poison included" true
    (List.exists (Bgp.Community.equal poison) u2);
  (* 1-based indexing round-trips *)
  List.iteri
    (fun i c ->
      check (Alcotest.option Alcotest.int)
        (Printf.sprintf "index of element %d" i)
        (Some (i + 1))
        (Dice.Sym_route.community_index u c))
    u

let suite =
  [ ("grammar: map/bind", `Quick, grammar_map_bind);
    ("grammar: both/opt", `Quick, grammar_both_opt);
    qtest grammar_shuffle_permutes;
    ("grammar: empty productions rejected", `Quick, grammar_rejects_empty);
    ("stats: merge and clear", `Quick, stats_merge);
    ("stats: empty distribution", `Quick, stats_empty_distribution);
    ("trace: find by kind", `Quick, trace_find);
    ("network: error handling", `Quick, network_errors);
    ("engine: stop and resume", `Quick, engine_stop_mid_run);
    ("speaker: faithful router wrapper", `Quick, speaker_wraps_router_faithfully);
    ("sym-route: community universe", `Quick, universe_contents) ]
