(* AS paths, communities, and path attributes. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let as_path_length () =
  let path = [ Bgp.As_path.Seq [ 1; 2; 3 ]; Bgp.As_path.Set [ 4; 5 ] ] in
  check Alcotest.int "set counts 1" 4 (Bgp.As_path.length path);
  check Alcotest.int "empty" 0 (Bgp.As_path.length Bgp.As_path.empty)

let as_path_prepend () =
  let p0 = Bgp.As_path.empty in
  let p1 = Bgp.As_path.prepend 65001 p0 in
  let p2 = Bgp.As_path.prepend 65002 p1 in
  check Alcotest.string "prepend merges into Seq" "65002 65001" (Bgp.As_path.to_string p2);
  let p3 = Bgp.As_path.prepend_n 9 3 p2 in
  check Alcotest.int "prepend_n adds n" 5 (Bgp.As_path.length p3);
  check (Alcotest.option Alcotest.int) "neighbor" (Some 9) (Bgp.As_path.neighbor_as p3);
  check (Alcotest.option Alcotest.int) "origin" (Some 65001) (Bgp.As_path.origin_as p3)

let as_path_origin_edge_cases () =
  check (Alcotest.option Alcotest.int) "empty has no origin" None
    (Bgp.As_path.origin_as Bgp.As_path.empty);
  check (Alcotest.option Alcotest.int) "trailing Set has no origin" None
    (Bgp.As_path.origin_as [ Bgp.As_path.Seq [ 1 ]; Bgp.As_path.Set [ 2; 3 ] ])

let as_path_contains =
  QCheck.Test.make ~name:"as-path: contains agrees with as_list" ~count:300
    QCheck.(pair (int_bound 70000) (list (int_bound 70000)))
    (fun (needle, asns) ->
      let path = [ Bgp.As_path.Seq asns ] in
      Bgp.As_path.contains needle path = List.mem needle (Bgp.As_path.as_list path))

let community_parse () =
  check Alcotest.string "roundtrip" "65001:100"
    (Bgp.Community.to_string (Bgp.Community.make 65001 100));
  (match Bgp.Community.of_string "no-export" with
  | Ok c -> Alcotest.(check bool) "well-known" true (Bgp.Community.equal c Bgp.Community.no_export)
  | Error _ -> Alcotest.fail "no-export must parse");
  Alcotest.(check bool) "rejects 70000:1" true
    (Result.is_error (Bgp.Community.of_string "70000:1"));
  check Alcotest.int "asn part" 65001 (Bgp.Community.asn (Bgp.Community.make 65001 7));
  check Alcotest.int "tag part" 7 (Bgp.Community.tag (Bgp.Community.make 65001 7))

let attr_communities () =
  let nh = Bgp.Ipv4.of_string_exn "10.0.0.1" in
  let c1 = Bgp.Community.make 1 1 and c2 = Bgp.Community.make 2 2 in
  let a = Bgp.Attr.make ~next_hop:nh () in
  let a = Bgp.Attr.add_community c2 (Bgp.Attr.add_community c1 a) in
  Alcotest.(check bool) "has c1" true (Bgp.Attr.has_community c1 a);
  let a = Bgp.Attr.add_community c1 a in
  check Alcotest.int "no duplicates" 2 (List.length a.Bgp.Attr.communities);
  let a = Bgp.Attr.remove_community c1 a in
  Alcotest.(check bool) "removed" false (Bgp.Attr.has_community c1 a);
  Alcotest.(check bool) "other kept" true (Bgp.Attr.has_community c2 a)

let attr_local_pref_default () =
  let nh = Bgp.Ipv4.of_string_exn "10.0.0.1" in
  let a = Bgp.Attr.make ~next_hop:nh () in
  check Alcotest.int "default 100" 100 (Bgp.Attr.effective_local_pref a);
  check Alcotest.int "explicit" 250
    (Bgp.Attr.effective_local_pref (Bgp.Attr.with_local_pref 250 a))

let attr_origin_codes () =
  List.iter
    (fun (o, c) ->
      check Alcotest.int (Bgp.Attr.origin_to_string o) c (Bgp.Attr.origin_code o);
      check
        (Alcotest.option
           (Alcotest.testable
              (fun ppf o -> Format.pp_print_string ppf (Bgp.Attr.origin_to_string o))
              ( = )))
        "roundtrip" (Some o)
        (Bgp.Attr.origin_of_code c))
    [ (Bgp.Attr.Igp, 0); (Bgp.Attr.Egp, 1); (Bgp.Attr.Incomplete, 2) ];
  check (Alcotest.option (Alcotest.testable (fun _ _ -> ()) ( = ))) "3 invalid" None
    (Bgp.Attr.origin_of_code 3)

let suite =
  [ ("as-path: decision length", `Quick, as_path_length);
    ("as-path: prepend", `Quick, as_path_prepend);
    ("as-path: origin edge cases", `Quick, as_path_origin_edge_cases);
    qtest as_path_contains;
    ("community: parse/print", `Quick, community_parse);
    ("attr: community set semantics", `Quick, attr_communities);
    ("attr: local-pref default", `Quick, attr_local_pref_default);
    ("attr: origin codes", `Quick, attr_origin_codes) ]
