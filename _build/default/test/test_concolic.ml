(* Concolic engine: expressions, intervals, solver, exploration. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

open Concolic

(* --- Expr --- *)

let expr_eval () =
  let x = Expr.var "te_x" ~lo:0 ~hi:100 in
  let env v = if v = x then 7 else 0 in
  let e = Expr.(Add (Var x, Const 3)) in
  check Alcotest.int "7+3" 10 (Expr.eval env e);
  check Alcotest.int "lt true" 1 (Expr.eval env Expr.(Lt (Var x, Const 8)));
  check Alcotest.int "band" 4 (Expr.eval env Expr.(Band (Var x, Const 12)));
  check Alcotest.int "not" 0 (Expr.eval env Expr.(Not (Const 5)))

let expr_negate () =
  let x = Expr.var "te_x" ~lo:0 ~hi:100 in
  let env v = if v = x then 7 else 0 in
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Expr.to_string e ^ " negation flips")
        (Expr.is_true env e)
        (not (Expr.is_true env (Expr.negate e))))
    [ Expr.(Lt (Var x, Const 8));
      Expr.(Le (Const 9, Var x));
      Expr.(Eq (Var x, Const 7));
      Expr.(Not (Eq (Var x, Const 7)));
      Expr.(And (Const 1, Eq (Var x, Const 7))) ]

let expr_vars_dedup () =
  let x = Expr.var "te_x" ~lo:0 ~hi:100 in
  let e = Expr.(Add (Var x, Mul (Var x, Const 2))) in
  check Alcotest.int "x counted once" 1 (List.length (Expr.vars e))

let var_interning () =
  let a = Expr.var "te_same" ~lo:0 ~hi:5 in
  let b = Expr.var "te_same" ~lo:0 ~hi:5 in
  Alcotest.(check bool) "same id" true (a.Expr.v_id = b.Expr.v_id);
  let c = Expr.var "te_same" ~lo:0 ~hi:9 in
  Alcotest.(check bool) "different domain, different var" true (a.Expr.v_id <> c.Expr.v_id)

(* --- Interval --- *)

let interval_ops () =
  let i = Interval.make 2 5 and j = Interval.make (-1) 3 in
  check Alcotest.int "add lo" 1 (Interval.add i j).Interval.lo;
  check Alcotest.int "add hi" 8 (Interval.add i j).Interval.hi;
  check Alcotest.int "sub lo" (-1) (Interval.sub i j).Interval.lo;
  check Alcotest.int "sub hi" 6 (Interval.sub i j).Interval.hi;
  check Alcotest.int "mul lo" (-5) (Interval.mul i j).Interval.lo;
  check Alcotest.int "mul hi" 15 (Interval.mul i j).Interval.hi;
  (match Interval.inter i j with
  | Some k ->
      check Alcotest.int "inter lo" 2 k.Interval.lo;
      check Alcotest.int "inter hi" 3 k.Interval.hi
  | None -> Alcotest.fail "must intersect");
  check (Alcotest.option Alcotest.reject) "disjoint" None
    (Option.map ignore (Interval.inter (Interval.make 0 1) (Interval.make 5 6)))

let interval_band_sound =
  QCheck.Test.make ~name:"interval: band is a sound envelope" ~count:500
    QCheck.(quad (int_bound 300) (int_bound 300) (int_bound 300) (int_bound 300))
    (fun (a, b, c, d) ->
      let i = Interval.make (min a b) (max a b) in
      let j = Interval.make (min c d) (max c d) in
      let env = Interval.band i j in
      (* sample some concrete pairs *)
      List.for_all
        (fun (x, y) -> Interval.mem (x land y) env)
        [ (i.Interval.lo, j.Interval.lo); (i.Interval.hi, j.Interval.hi);
          (i.Interval.lo, j.Interval.hi); (i.Interval.hi, j.Interval.lo);
          ((i.Interval.lo + i.Interval.hi) / 2, (j.Interval.lo + j.Interval.hi) / 2) ])

(* --- Solver --- *)

let solve_simple () =
  let x = Expr.var "ts_x" ~lo:0 ~hi:255 in
  let y = Expr.var "ts_y" ~lo:0 ~hi:255 in
  match Solver.solve Expr.[ Eq (Add (Var x, Var y), Const 300); Lt (Var x, Const 50) ] with
  | Solver.Sat m ->
      let get v = Option.get (Solver.model_value m v) in
      check Alcotest.int "sum" 300 (get x + get y);
      Alcotest.(check bool) "x < 50" true (get x < 50)
  | Solver.Unsat | Solver.Unknown -> Alcotest.fail "must be satisfiable"

let solve_unsat () =
  let x = Expr.var "ts_x" ~lo:0 ~hi:255 in
  (match Solver.solve Expr.[ Lt (Var x, Const 5); Lt (Const 10, Var x) ] with
  | Solver.Unsat -> ()
  | Solver.Sat _ | Solver.Unknown -> Alcotest.fail "contradiction must be Unsat");
  match Solver.solve Expr.[ Eq (Var x, Const 300) ] with
  | Solver.Unsat -> ()
  | Solver.Sat _ | Solver.Unknown -> Alcotest.fail "out of domain must be Unsat"

let solve_boolean_structure () =
  let x = Expr.var "ts_x" ~lo:0 ~hi:255 in
  let y = Expr.var "ts_y" ~lo:0 ~hi:255 in
  let c =
    Expr.(
      And
        ( Or (Eq (Var x, Const 4), Eq (Var x, Const 9)),
          Not (Eq (Var x, Const 4)) ))
  in
  match Solver.solve [ c; Expr.(Eq (Var y, Var x)) ] with
  | Solver.Sat m ->
      check (Alcotest.option Alcotest.int) "x forced to 9" (Some 9) (Solver.model_value m x);
      check (Alcotest.option Alcotest.int) "y follows" (Some 9) (Solver.model_value m y)
  | Solver.Unsat | Solver.Unknown -> Alcotest.fail "must solve"

let solve_band () =
  let x = Expr.var "ts_x" ~lo:0 ~hi:255 in
  match Solver.solve Expr.[ Eq (Band (Var x, Const 0xF0), Const 0x50); Lt (Const 0x57, Var x) ] with
  | Solver.Sat m ->
      let v = Option.get (Solver.model_value m x) in
      Alcotest.(check bool) "mask holds" true (v land 0xF0 = 0x50 && v > 0x57)
  | Solver.Unsat | Solver.Unknown -> Alcotest.fail "must solve masked constraint"

let arb_constraint_set =
  (* Random small constraint systems over 3 variables. *)
  let open QCheck.Gen in
  let x = Expr.var "tp_x" ~lo:0 ~hi:60 in
  let y = Expr.var "tp_y" ~lo:0 ~hi:60 in
  let z = Expr.var "tp_z" ~lo:0 ~hi:60 in
  let term = oneof [ return (Expr.Var x); return (Expr.Var y); return (Expr.Var z);
                     map (fun n -> Expr.Const n) (int_bound 80) ] in
  let expr =
    let* a = term in
    let* b = term in
    oneofl
      [ Expr.Add (a, b); Expr.Sub (a, b); a ]
  in
  let cmp =
    let* a = expr in
    let* b = expr in
    oneofl [ Expr.Eq (a, b); Expr.Lt (a, b); Expr.Le (a, b); Expr.Not (Expr.Eq (a, b)) ]
  in
  QCheck.make
    ~print:(fun cs -> String.concat " & " (List.map Expr.to_string cs))
    (list_size (int_range 1 4) cmp)

let solver_sat_sound =
  QCheck.Test.make ~name:"solver: SAT models verify; UNSAT has no model in brute force"
    ~count:200 arb_constraint_set
    (fun cs ->
      match Solver.solve cs with
      | Solver.Sat m -> Solver.check m cs
      | Solver.Unknown -> true
      | Solver.Unsat ->
          (* brute-force over the 61^3 cube, sampled on a grid for cost *)
          let x = Expr.var "tp_x" ~lo:0 ~hi:60 in
          let y = Expr.var "tp_y" ~lo:0 ~hi:60 in
          let z = Expr.var "tp_z" ~lo:0 ~hi:60 in
          let found = ref false in
          for i = 0 to 60 do
            for j = 0 to 60 do
              for k = 0 to 60 do
                if not !found then begin
                  let env v =
                    if v = x then i else if v = y then j else if v = z then k else 0
                  in
                  if List.for_all (Expr.is_true env) cs then found := true
                end
              done
            done
          done;
          not !found)

(* --- Cval / Ctx --- *)

let cval_concrete_folding () =
  let a = Cval.concrete 4 and b = Cval.concrete 5 in
  let s = Cval.add a b in
  check Alcotest.int "conc" 9 (Cval.to_int s);
  Alcotest.(check bool) "stays concrete" false (Cval.is_symbolic s)

let ctx_records_symbolic_branches_only () =
  let ctx = Ctx.create [ ("tc_f", 9) ] in
  let f = Ctx.field ctx "tc_f" ~lo:0 ~hi:20 ~default:0 in
  check Alcotest.int "input respected" 9 (Cval.to_int f);
  ignore (Ctx.branch ctx (Cval.concrete 1));
  ignore (Ctx.branch ctx (Cval.lt f (Cval.concrete 10)));
  check Alcotest.int "two branches executed" 2 (Ctx.branches ctx);
  check Alcotest.int "one symbolic constraint" 1 (List.length (Ctx.path ctx))

let ctx_field_clipping () =
  let ctx = Ctx.create [ ("tc_g", 999) ] in
  let f = Ctx.field ctx "tc_g" ~lo:0 ~hi:20 ~default:0 in
  check Alcotest.int "clipped to domain" 20 (Cval.to_int f);
  let again = Ctx.field ctx "tc_g" ~lo:0 ~hi:20 ~default:0 in
  check Alcotest.int "same value on re-read" 20 (Cval.to_int again)

(* --- Engine --- *)

let nested_program ctx =
  let x = Ctx.field ctx "tn_x" ~lo:0 ~hi:255 ~default:0 in
  let y = Ctx.field ctx "tn_y" ~lo:0 ~hi:255 ~default:0 in
  if Ctx.branch ctx (Cval.eq_const x 42) then
    if Ctx.branch ctx (Cval.lt y (Cval.concrete 10)) then "a"
    else if Ctx.branch ctx (Cval.eq (Cval.add x y) (Cval.concrete 100)) then
      failwith "seeded bug"
    else "b"
  else if Ctx.branch ctx (Cval.gt y (Cval.concrete 200)) then "c"
  else "d"

let engine_coverage () =
  let r = Engine.explore ~seeds:[ [] ] nested_program in
  check Alcotest.int "5 distinct paths" 5 r.Engine.distinct_paths;
  check Alcotest.int "1 crash" 1 (List.length r.Engine.crashes);
  Alcotest.(check bool) "crash input satisfies x+y=100" true
    (match r.Engine.crashes with
    | [ c ] ->
        List.assoc "tn_x" c.Engine.run_input = 42
        && List.assoc "tn_x" c.Engine.run_input + List.assoc "tn_y" c.Engine.run_input = 100
    | _ -> false)

let engine_respects_limits () =
  let limits = { Engine.default_limits with Engine.max_inputs = 2 } in
  let r = Engine.explore ~limits ~seeds:[ [] ] nested_program in
  check Alcotest.int "stopped at 2" 2 r.Engine.inputs_executed

let engine_dedupes_inputs () =
  (* Duplicate seeds collapse; the child input derived twice (x=3, from
     both remaining seeds) runs once.  The engine compares inputs
     syntactically, so [] and [x=0] are distinct seeds. *)
  let program ctx =
    let x = Ctx.field ctx "td_x" ~lo:0 ~hi:10 ~default:0 in
    Ctx.branch ctx (Cval.eq_const x 3)
  in
  let r = Engine.explore ~seeds:[ []; []; [ ("td_x", 0) ] ] program in
  check Alcotest.int "three executions" 3 r.Engine.inputs_executed;
  check Alcotest.int "two distinct paths" 2 r.Engine.distinct_paths

(* --- Grammar --- *)

let grammar_deterministic () =
  let g = Grammar.list_of ~min:2 ~max:5 (Grammar.range 0 9) in
  let a = Grammar.run g (Netsim.Rng.create 5) in
  let b = Grammar.run g (Netsim.Rng.create 5) in
  check (Alcotest.list Alcotest.int) "same seed same derivation" a b

let grammar_weighted_skew () =
  let g = Grammar.weighted [ (9, Grammar.pure "common"); (1, Grammar.pure "rare") ] in
  let rng = Netsim.Rng.create 11 in
  let n = 1000 in
  let common = ref 0 in
  for _ = 1 to n do
    if Grammar.run g rng = "common" then incr common
  done;
  Alcotest.(check bool) "skew respected" true (!common > 800 && !common < 990)

let suite =
  [ ("expr: evaluation", `Quick, expr_eval);
    ("expr: negate flips truth", `Quick, expr_negate);
    ("expr: vars dedup", `Quick, expr_vars_dedup);
    ("expr: interning", `Quick, var_interning);
    ("interval: arithmetic", `Quick, interval_ops);
    qtest interval_band_sound;
    ("solver: linear system", `Quick, solve_simple);
    ("solver: unsat detection", `Quick, solve_unsat);
    ("solver: boolean structure", `Quick, solve_boolean_structure);
    ("solver: bitmask constraints", `Quick, solve_band);
    qtest solver_sat_sound;
    ("cval: concrete folding", `Quick, cval_concrete_folding);
    ("ctx: symbolic branches recorded", `Quick, ctx_records_symbolic_branches_only);
    ("ctx: field clipping and stability", `Quick, ctx_field_clipping);
    ("engine: full path coverage", `Quick, engine_coverage);
    ("engine: input limit", `Quick, engine_respects_limits);
    ("engine: input dedup", `Quick, engine_dedupes_inputs);
    ("grammar: determinism", `Quick, grammar_deterministic);
    ("grammar: weighted choice", `Quick, grammar_weighted_skew) ]
