test/test_dice.ml: Alcotest Bgp Concolic Dice Format Lazy List Netsim Option QCheck QCheck_alcotest Result Snapshot String Topology
