test/test_policy.ml: Alcotest Bgp Option
