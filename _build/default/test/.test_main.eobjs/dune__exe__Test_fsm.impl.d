test/test_fsm.ml: Alcotest Bgp List
