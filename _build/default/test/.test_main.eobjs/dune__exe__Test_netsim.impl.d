test/test_netsim.ml: Alcotest Int List Netsim QCheck QCheck_alcotest
