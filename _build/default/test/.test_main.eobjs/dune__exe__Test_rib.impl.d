test/test_rib.ml: Alcotest Bgp List Option Printf QCheck QCheck_alcotest String
