test/test_topology.ml: Alcotest Bgp Format List Netsim Printf QCheck QCheck_alcotest String Topology
