test/test_config.ml: Alcotest Bgp Format List Option Printf Result String Topology
