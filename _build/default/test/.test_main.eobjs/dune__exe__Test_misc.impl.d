test/test_misc.ml: Alcotest Bgp Concolic Dice Float List Netsim Printf QCheck QCheck_alcotest Topology
