test/test_snapshot.ml: Alcotest Bgp List Netsim Printf Result Snapshot Topology Unix
