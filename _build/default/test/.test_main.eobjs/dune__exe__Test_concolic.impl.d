test/test_concolic.ml: Alcotest Concolic Ctx Cval Engine Expr Grammar Interval List Netsim Option QCheck QCheck_alcotest Solver String
