test/test_sparrow.ml: Alcotest Bgp Bytes Dice Lazy List Netsim Printf QCheck QCheck_alcotest Snapshot String Topology
