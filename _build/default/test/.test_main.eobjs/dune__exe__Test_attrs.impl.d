test/test_attrs.ml: Alcotest Bgp Format List QCheck QCheck_alcotest Result
