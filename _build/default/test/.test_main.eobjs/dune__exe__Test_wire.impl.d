test/test_wire.ml: Alcotest Bgp Buffer Bytes Char Format List Printf QCheck QCheck_alcotest String
