test/test_decision.ml: Alcotest Bgp Format
