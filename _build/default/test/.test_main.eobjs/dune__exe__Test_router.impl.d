test/test_router.ml: Alcotest Bgp Bytes List Netsim Option Printf
