test/test_prefix.ml: Alcotest Bgp List QCheck QCheck_alcotest Result
